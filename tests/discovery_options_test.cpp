// Property matrix over DiscoveryOptions: for every combination of
// {row filter on/off} x {table filters on/off} x {hash size} x {k}, the
// reported top-k scores must be identical (filters are performance knobs,
// never correctness knobs), and the work counters must move in the
// direction each knob promises.

#include <gtest/gtest.h>

#include <tuple>

#include "core/mate.h"
#include "index/index_builder.h"
#include "workload/generator.h"
#include "workload/query_gen.h"

namespace mate {
namespace {

struct World {
  Corpus corpus;
  std::vector<QueryCase> queries;
};

const World& SharedWorld() {
  static const World* world = [] {
    auto* w = new World();
    Vocabulary vocab = Vocabulary::Generate(300, Vocabulary::Style::kMixed,
                                            321);
    CorpusSpec spec;
    spec.num_tables = 35;
    spec.min_columns = 2;
    spec.max_columns = 7;
    spec.column_tail_exponent = 2.0;
    spec.seed = 322;
    w->corpus = GenerateCorpus(spec, vocab);
    QuerySetSpec qspec;
    qspec.num_queries = 3;
    qspec.query_rows = 30;
    qspec.key_size = 2;
    qspec.planted_tables = 6;
    qspec.seed = 323;
    w->queries = GenerateQueries(&w->corpus, vocab, qspec);
    return w;
  }();
  return *world;
}

using OptionsParam = std::tuple<bool, bool, size_t, int>;

class DiscoveryOptionsTest : public testing::TestWithParam<OptionsParam> {};

TEST_P(DiscoveryOptionsTest, ScoresInvariantUnderKnobs) {
  auto [row_filter, table_filters, hash_bits, k] = GetParam();
  const World& world = SharedWorld();
  IndexBuildOptions build;
  build.hash_bits = hash_bits;
  auto index = BuildIndex(world.corpus, build);
  ASSERT_TRUE(index.ok());
  MateSearch mate(&world.corpus, index->get());

  DiscoveryOptions reference;  // everything on, same k
  reference.k = k;
  DiscoveryOptions configured;
  configured.k = k;
  configured.use_row_filter = row_filter;
  configured.use_table_filters = table_filters;

  for (const QueryCase& qc : world.queries) {
    DiscoveryResult expect = mate.Discover(qc.query, qc.key_columns,
                                           reference);
    DiscoveryResult actual = mate.Discover(qc.query, qc.key_columns,
                                           configured);
    ASSERT_EQ(expect.top_k.size(), actual.top_k.size());
    for (size_t i = 0; i < expect.top_k.size(); ++i) {
      EXPECT_EQ(expect.top_k[i].table_id, actual.top_k[i].table_id);
      EXPECT_EQ(expect.top_k[i].joinability, actual.top_k[i].joinability);
    }

    // Knob direction checks.
    if (!row_filter) {
      EXPECT_EQ(actual.stats.rows_checked,
                actual.stats.rows_sent_to_verification);
    } else {
      EXPECT_LE(actual.stats.rows_sent_to_verification,
                actual.stats.rows_checked);
    }
    if (!table_filters) {
      EXPECT_EQ(actual.stats.tables_pruned_rule1, 0u);
      EXPECT_EQ(actual.stats.tables_pruned_rule2, 0u);
      EXPECT_EQ(actual.stats.tables_evaluated,
                actual.stats.candidate_tables);
    }
  }
}

std::string OptionsName(const testing::TestParamInfo<OptionsParam>& info) {
  auto [row_filter, table_filters, hash_bits, k] = info.param;
  std::string name = row_filter ? "rf1" : "rf0";
  name += table_filters ? "_tf1" : "_tf0";
  name += "_b" + std::to_string(hash_bits);
  name += "_k" + std::to_string(k);
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    KnobMatrix, DiscoveryOptionsTest,
    testing::Combine(testing::Bool(), testing::Bool(),
                     testing::Values(size_t{128}, size_t{512}),
                     testing::Values(1, 3, 8)),
    OptionsName);

TEST(DiscoveryOptionsInteractionTest, SmallerKPrunesMoreOrEqualTables) {
  const World& world = SharedWorld();
  auto index = BuildIndex(world.corpus, IndexBuildOptions{});
  ASSERT_TRUE(index.ok());
  MateSearch mate(&world.corpus, index->get());
  for (const QueryCase& qc : world.queries) {
    DiscoveryOptions k1, k8;
    k1.k = 1;
    k8.k = 8;
    DiscoveryResult r1 = mate.Discover(qc.query, qc.key_columns, k1);
    DiscoveryResult r8 = mate.Discover(qc.query, qc.key_columns, k8);
    // A tighter k raises the pruning threshold earlier: never evaluates
    // more tables than a looser k.
    EXPECT_LE(r1.stats.tables_evaluated, r8.stats.tables_evaluated);
    // And the k=1 winner is k=8's first entry.
    if (!r1.top_k.empty() && !r8.top_k.empty()) {
      EXPECT_EQ(r1.top_k[0].table_id, r8.top_k[0].table_id);
      EXPECT_EQ(r1.top_k[0].joinability, r8.top_k[0].joinability);
    }
  }
}

TEST(DiscoveryOptionsInteractionTest, InitStrategyNeverChangesScores) {
  const World& world = SharedWorld();
  auto index = BuildIndex(world.corpus, IndexBuildOptions{});
  ASSERT_TRUE(index.ok());
  MateSearch mate(&world.corpus, index->get());
  const InitColumnStrategy strategies[] = {
      InitColumnStrategy::kMinCardinality, InitColumnStrategy::kColumnOrder,
      InitColumnStrategy::kLongestString, InitColumnStrategy::kBestCase,
      InitColumnStrategy::kWorstCase};
  for (const QueryCase& qc : world.queries) {
    DiscoveryOptions base;
    base.k = 5;
    DiscoveryResult reference = mate.Discover(qc.query, qc.key_columns, base);
    for (InitColumnStrategy strategy : strategies) {
      DiscoveryOptions options = base;
      options.init_strategy = strategy;
      DiscoveryResult result = mate.Discover(qc.query, qc.key_columns,
                                             options);
      ASSERT_EQ(result.top_k.size(), reference.top_k.size())
          << InitColumnStrategyName(strategy);
      for (size_t i = 0; i < result.top_k.size(); ++i) {
        EXPECT_EQ(result.top_k[i].joinability,
                  reference.top_k[i].joinability)
            << InitColumnStrategyName(strategy);
        EXPECT_EQ(result.top_k[i].table_id, reference.top_k[i].table_id)
            << InitColumnStrategyName(strategy);
      }
    }
  }
}

}  // namespace
}  // namespace mate
