#include "baselines/mcr.h"

#include <gtest/gtest.h>

#include "baselines/scr.h"
#include "index/index_builder.h"

namespace mate {
namespace {

Table MakeQueryD() {
  Table d("d");
  d.AddColumn("F");
  d.AddColumn("L");
  d.AddColumn("C");
  (void)d.AppendRow({"Muhammad", "Lee", "US"});
  (void)d.AppendRow({"Ansel", "Adams", "UK"});
  (void)d.AppendRow({"Ansel", "Adams", "US"});
  (void)d.AppendRow({"Muhammad", "Lee", "Germany"});
  (void)d.AppendRow({"Helmut", "Newton", "Germany"});
  return d;
}

Corpus MakeCorpus() {
  Corpus corpus;
  Table t1("T1");
  t1.AddColumn("Vorname");
  t1.AddColumn("Nachname");
  t1.AddColumn("Land");
  t1.AddColumn("Besetzung");
  (void)t1.AppendRow({"Helmut", "Newton", "Germany", "Photographer"});
  (void)t1.AppendRow({"Muhammad", "Lee", "US", "Dancer"});
  (void)t1.AppendRow({"Ansel", "Adams", "UK", "Dancer"});
  (void)t1.AppendRow({"Ansel", "Adams", "US", "Photographer"});
  (void)t1.AppendRow({"Muhammad", "Ali", "US", "Boxer"});
  (void)t1.AppendRow({"Muhammad", "Lee", "Germany", "Birder"});
  (void)t1.AppendRow({"Gretchen", "Lee", "Germany", "Artist"});
  (void)t1.AppendRow({"Adam", "Sandler", "US", "Actor"});
  corpus.AddTable(std::move(t1));
  Table t2("T2");
  t2.AddColumn("x");
  t2.AddColumn("y");
  t2.AddColumn("z");
  (void)t2.AppendRow({"Muhammad", "Lee", "US"});
  (void)t2.AppendRow({"a", "b", "c"});
  corpus.AddTable(std::move(t2));
  return corpus;
}

std::unique_ptr<InvertedIndex> Build(const Corpus& corpus) {
  auto index = BuildIndex(corpus, IndexBuildOptions{});
  EXPECT_TRUE(index.ok());
  return std::move(*index);
}

TEST(McrTest, FindsTheFigure1Result) {
  Corpus corpus = MakeCorpus();
  auto index = Build(corpus);
  McrSearch mcr(&corpus, index.get());
  DiscoveryOptions options;
  options.k = 2;
  DiscoveryResult result = mcr.Discover(MakeQueryD(), {0, 1, 2}, options);
  ASSERT_EQ(result.top_k.size(), 2u);
  EXPECT_EQ(result.top_k[0].table_id, 0u);
  EXPECT_EQ(result.top_k[0].joinability, 5);
  EXPECT_EQ(result.top_k[1].table_id, 1u);
  EXPECT_EQ(result.top_k[1].joinability, 1);
}

TEST(McrTest, FetchesAllQueryColumns) {
  // MCR's defining cost: it fetches PLs for every key column, so it must
  // fetch at least as many PL items as SCR (init column only).
  Corpus corpus = MakeCorpus();
  auto index = Build(corpus);
  McrSearch mcr(&corpus, index.get());
  ScrSearch scr(&corpus, index.get());
  DiscoveryOptions options;
  options.k = 2;
  DiscoveryResult m = mcr.Discover(MakeQueryD(), {0, 1, 2}, options);
  DiscoveryResult s = scr.Discover(MakeQueryD(), {0, 1, 2}, options);
  EXPECT_GT(m.stats.pl_items_fetched, s.stats.pl_items_fetched);
}

TEST(McrTest, AgreesWithScrOnScores) {
  Corpus corpus = MakeCorpus();
  auto index = Build(corpus);
  McrSearch mcr(&corpus, index.get());
  ScrSearch scr(&corpus, index.get());
  DiscoveryOptions options;
  options.k = 3;
  DiscoveryResult m = mcr.Discover(MakeQueryD(), {0, 1, 2}, options);
  DiscoveryResult s = scr.Discover(MakeQueryD(), {0, 1, 2}, options);
  ASSERT_EQ(m.top_k.size(), s.top_k.size());
  for (size_t i = 0; i < m.top_k.size(); ++i) {
    EXPECT_EQ(m.top_k[i].table_id, s.top_k[i].table_id);
    EXPECT_EQ(m.top_k[i].joinability, s.top_k[i].joinability);
  }
}

TEST(McrTest, IntersectionPrunesSingleColumnRows) {
  // Rows hit by only one key column never reach verification.
  Corpus corpus;
  Table t("t");
  t.AddColumn("a");
  t.AddColumn("b");
  (void)t.AppendRow({"x", "nope"});   // only column-0 value
  (void)t.AppendRow({"nope", "y"});   // only column-1 value
  (void)t.AppendRow({"x", "y"});      // both -> candidate
  corpus.AddTable(std::move(t));
  auto index = Build(corpus);
  McrSearch mcr(&corpus, index.get());
  Table q("q");
  q.AddColumn("k1");
  q.AddColumn("k2");
  (void)q.AppendRow({"x", "y"});
  DiscoveryOptions options;
  DiscoveryResult result = mcr.Discover(q, {0, 1}, options);
  EXPECT_EQ(result.stats.rows_sent_to_verification, 1u);
  ASSERT_EQ(result.top_k.size(), 1u);
  EXPECT_EQ(result.top_k[0].joinability, 1);
}

TEST(McrTest, CrossColumnValuesStillIntersect) {
  // A row can contain both key values in *swapped* columns; intersection
  // keeps it (each value hits a different key position) and verification
  // finds the swapped mapping.
  Corpus corpus;
  Table t("t");
  t.AddColumn("a");
  t.AddColumn("b");
  (void)t.AppendRow({"y", "x"});
  corpus.AddTable(std::move(t));
  auto index = Build(corpus);
  McrSearch mcr(&corpus, index.get());
  Table q("q");
  q.AddColumn("k1");
  q.AddColumn("k2");
  (void)q.AppendRow({"x", "y"});
  DiscoveryOptions options;
  DiscoveryResult result = mcr.Discover(q, {0, 1}, options);
  ASSERT_EQ(result.top_k.size(), 1u);
  EXPECT_EQ(result.top_k[0].joinability, 1);
  EXPECT_EQ(result.top_k[0].best_mapping, (std::vector<ColumnId>{1, 0}));
}

TEST(McrTest, ExcludeTables) {
  Corpus corpus = MakeCorpus();
  auto index = Build(corpus);
  McrSearch mcr(&corpus, index.get());
  DiscoveryOptions options;
  options.k = 2;
  options.exclude_tables = {0};
  DiscoveryResult result = mcr.Discover(MakeQueryD(), {0, 1, 2}, options);
  ASSERT_EQ(result.top_k.size(), 1u);
  EXPECT_EQ(result.top_k[0].table_id, 1u);
}

TEST(McrTest, EmptyQueryHandledGracefully) {
  Corpus corpus = MakeCorpus();
  auto index = Build(corpus);
  McrSearch mcr(&corpus, index.get());
  Table q("q");
  q.AddColumn("a");
  DiscoveryOptions options;
  EXPECT_TRUE(mcr.Discover(q, {}, options).top_k.empty());
  EXPECT_TRUE(mcr.Discover(q, {0}, options).top_k.empty());
}

}  // namespace
}  // namespace mate
