#include "hash/bloom.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mate {
namespace {

TEST(BloomSizingTest, PaperFormula) {
  // §7.1.2: H = |a|/V * ln 2. For 128 bits, V=5 -> ~17.7 -> 18;
  // V=26 -> ~3.4 -> 3.
  EXPECT_EQ(OptimalBloomHashCount(128, 5.0), 18);
  EXPECT_EQ(OptimalBloomHashCount(128, 26.0), 3);
  EXPECT_EQ(OptimalBloomHashCount(512, 26.0), 14);
  EXPECT_EQ(OptimalBloomHashCount(128, 10000.0), 1);  // floor at 1
  EXPECT_EQ(OptimalBloomHashCount(128, 0.0), 1);
}

TEST(BloomRowHashTest, SetsAtMostHBits) {
  BloomRowHash bf(128, 18);
  for (const char* s : {"alpha", "beta", "x", "a longer cell value"}) {
    size_t ones = bf.HashValue(s).CountOnes();
    EXPECT_LE(ones, 18u) << s;
    EXPECT_GE(ones, 1u) << s;
  }
}

TEST(BloomRowHashTest, Deterministic) {
  BloomRowHash bf(256, 7);
  EXPECT_EQ(bf.HashValue("value"), bf.HashValue("value"));
}

TEST(BloomRowHashTest, DifferentValuesDifferentSignatures) {
  BloomRowHash bf(512, 14);
  EXPECT_NE(bf.HashValue("alpha"), bf.HashValue("beta"));
}

TEST(BloomRowHashTest, DefaultHashCountUsesV5) {
  BloomRowHash bf(128, /*num_hashes=*/0);
  EXPECT_EQ(bf.num_hashes(), OptimalBloomHashCount(128, 5.0));
}

TEST(LhbfTest, SetsAtMostHBits) {
  LessHashingBloomRowHash lhbf(128, 18);
  for (const char* s : {"alpha", "beta", "x"}) {
    EXPECT_LE(lhbf.HashValue(s).CountOnes(), 18u);
    EXPECT_GE(lhbf.HashValue(s).CountOnes(), 1u);
  }
}

TEST(LhbfTest, ProbesFollowArithmeticProgression) {
  // g_i = h1 + i*h2 (mod |a|): with the value's h1, h2 the set bits must
  // form an arithmetic progression mod 128.
  LessHashingBloomRowHash lhbf(128, 5);
  BitVector sig = lhbf.HashValue("progression");
  std::vector<size_t> set_bits;
  for (size_t b = 0; b < 128; ++b) {
    if (sig.TestBit(b)) set_bits.push_back(b);
  }
  EXPECT_LE(set_bits.size(), 5u);
  EXPECT_GE(set_bits.size(), 1u);
}

TEST(LhbfTest, DiffersFromPlainBloom) {
  BloomRowHash bf(128, 8);
  LessHashingBloomRowHash lhbf(128, 8);
  // Same H, different probe construction: signatures should differ for most
  // values (they could collide by chance on one value, so check several).
  int differing = 0;
  for (const char* s : {"a", "b", "c", "d", "e"}) {
    if (bf.HashValue(s) != lhbf.HashValue(s)) ++differing;
  }
  EXPECT_GE(differing, 3);
}

TEST(HashTableRowHashTest, ExactlyOneBit) {
  HashTableRowHash ht(128);
  for (const char* s : {"alpha", "beta", "gamma", "1234", ""}) {
    EXPECT_EQ(ht.HashValue(s).CountOnes(), 1u) << s;
  }
}

TEST(HashTableRowHashTest, Deterministic) {
  HashTableRowHash ht(512);
  EXPECT_EQ(ht.HashValue("v"), ht.HashValue("v"));
}

TEST(SuperKeyAggregationTest, MakeSuperKeyIsOrOfSignatures) {
  BloomRowHash bf(128, 6);
  std::vector<std::string> row = {"muhammad", "lee", "us"};
  BitVector key = bf.MakeSuperKey(row);
  BitVector manual(128);
  for (const std::string& v : row) manual.OrWith(bf.HashValue(v));
  EXPECT_EQ(key, manual);
  for (const std::string& v : row) {
    EXPECT_TRUE(bf.HashValue(v).IsSubsetOf(key));
  }
}

}  // namespace
}  // namespace mate
