#include "core/discovery_engine.h"

#include <gtest/gtest.h>

#include <thread>

#include "index/index_builder.h"
#include "util/rng.h"
#include "workload/query_gen.h"
#include "workload/vocabulary.h"

namespace mate {
namespace {

struct Fixture {
  Corpus corpus;
  std::vector<QueryCase> queries;
  std::unique_ptr<InvertedIndex> index;
};

// A corpus with planted joins so the batch has nontrivial top-k lists,
// pruning activity, and row-filter traffic.
Fixture MakeFixture(size_t num_queries = 8) {
  Fixture f;
  Rng rng(7);
  Vocabulary vocab = Vocabulary::Generate(120, Vocabulary::Style::kWords, 11);
  for (size_t t = 0; t < 24; ++t) {
    Table table("t" + std::to_string(t));
    size_t cols = 3 + rng.Uniform(3);
    for (size_t c = 0; c < cols; ++c) table.AddColumn("c" + std::to_string(c));
    size_t rows = 4 + rng.Uniform(16);
    for (size_t r = 0; r < rows; ++r) {
      std::vector<std::string> cells;
      for (size_t c = 0; c < cols; ++c) {
        cells.push_back(vocab.word(rng.Uniform(vocab.size())));
      }
      (void)table.AppendRow(std::move(cells));
    }
    f.corpus.AddTable(std::move(table));
  }
  QuerySetSpec spec;
  spec.num_queries = num_queries;
  spec.query_rows = 20;
  spec.query_columns = 4;
  spec.key_size = 2;
  spec.planted_tables = 6;
  spec.seed = 3;
  f.queries = GenerateQueries(&f.corpus, vocab, spec);
  auto index = BuildIndex(f.corpus, IndexBuildOptions{});
  EXPECT_TRUE(index.ok());
  f.index = std::move(*index);
  return f;
}

std::vector<BatchQuery> ToBatch(const std::vector<QueryCase>& queries) {
  std::vector<BatchQuery> batch;
  for (const QueryCase& qc : queries) {
    batch.push_back({&qc.query, qc.key_columns});
  }
  return batch;
}

// Everything except the wall-clock fields must match the serial path.
void ExpectSameResult(const DiscoveryResult& serial,
                      const DiscoveryResult& batched, size_t query_idx) {
  ASSERT_EQ(serial.top_k.size(), batched.top_k.size()) << query_idx;
  for (size_t i = 0; i < serial.top_k.size(); ++i) {
    EXPECT_EQ(serial.top_k[i].table_id, batched.top_k[i].table_id)
        << query_idx;
    EXPECT_EQ(serial.top_k[i].joinability, batched.top_k[i].joinability)
        << query_idx;
    EXPECT_EQ(serial.top_k[i].best_mapping, batched.top_k[i].best_mapping)
        << query_idx;
  }
  EXPECT_EQ(serial.stats.pl_items_fetched, batched.stats.pl_items_fetched);
  EXPECT_EQ(serial.stats.candidate_tables, batched.stats.candidate_tables);
  EXPECT_EQ(serial.stats.tables_evaluated, batched.stats.tables_evaluated);
  EXPECT_EQ(serial.stats.rows_checked, batched.stats.rows_checked);
  EXPECT_EQ(serial.stats.rows_sent_to_verification,
            batched.stats.rows_sent_to_verification);
  EXPECT_EQ(serial.stats.rows_true_positive, batched.stats.rows_true_positive);
  EXPECT_EQ(serial.stats.value_comparisons, batched.stats.value_comparisons);
}

void CheckBatchMatchesSequential(unsigned num_threads) {
  Fixture f = MakeFixture();
  MateSearch serial_engine(&f.corpus, f.index.get());
  DiscoveryOptions options;
  options.k = 5;

  std::vector<DiscoveryResult> serial;
  for (const QueryCase& qc : f.queries) {
    serial.push_back(serial_engine.Discover(qc.query, qc.key_columns, options));
  }

  DiscoveryEngine engine(&f.corpus, f.index.get());
  BatchOptions batch_options;
  batch_options.num_threads = num_threads;
  BatchResult batch =
      engine.DiscoverBatch(ToBatch(f.queries), options, batch_options);

  ASSERT_EQ(batch.results.size(), serial.size());
  for (size_t q = 0; q < serial.size(); ++q) {
    ExpectSameResult(serial[q], batch.results[q], q);
  }

  // Aggregates are index-ordered sums, so they are deterministic too.
  uint64_t pl = 0, verified = 0, tp = 0;
  for (const DiscoveryResult& r : serial) {
    pl += r.stats.pl_items_fetched;
    verified += r.stats.rows_sent_to_verification;
    tp += r.stats.rows_true_positive;
  }
  EXPECT_EQ(batch.stats.queries, serial.size());
  EXPECT_EQ(batch.stats.pl_items_fetched, pl);
  EXPECT_EQ(batch.stats.rows_sent_to_verification, verified);
  EXPECT_EQ(batch.stats.rows_true_positive, tp);
  EXPECT_GT(batch.stats.wall_seconds, 0.0);
  EXPECT_GE(batch.stats.latency_max_s, batch.stats.latency_p50_s);
}

TEST(DiscoveryEngineTest, BatchMatchesSequentialOneThread) {
  CheckBatchMatchesSequential(1);
}

TEST(DiscoveryEngineTest, BatchMatchesSequentialFourThreads) {
  CheckBatchMatchesSequential(4);
}

TEST(DiscoveryEngineTest, BatchMatchesSequentialHardwareThreads) {
  CheckBatchMatchesSequential(0);  // 0 = hardware concurrency
}

TEST(DiscoveryEngineTest, EmptyBatch) {
  Fixture f = MakeFixture(1);
  DiscoveryEngine engine(&f.corpus, f.index.get());
  BatchOptions batch_options;
  batch_options.num_threads = 4;
  BatchResult batch =
      engine.DiscoverBatch({}, DiscoveryOptions{}, batch_options);
  EXPECT_TRUE(batch.results.empty());
  EXPECT_EQ(batch.stats.queries, 0u);
  EXPECT_EQ(batch.stats.QueriesPerSecond(), 0.0);  // no inf/NaN on 0 queries
  EXPECT_EQ(batch.stats.latency_p99_s, 0.0);
}

TEST(DiscoveryEngineTest, KZeroYieldsEmptyTopKPerQuery) {
  Fixture f = MakeFixture(4);
  DiscoveryEngine engine(&f.corpus, f.index.get());
  DiscoveryOptions options;
  options.k = 0;
  BatchOptions batch_options;
  batch_options.num_threads = 2;
  BatchResult batch =
      engine.DiscoverBatch(ToBatch(f.queries), options, batch_options);
  ASSERT_EQ(batch.results.size(), f.queries.size());
  for (const DiscoveryResult& r : batch.results) {
    EXPECT_TRUE(r.top_k.empty());
  }
  EXPECT_EQ(batch.stats.queries, f.queries.size());
}

TEST(DiscoveryEngineTest, GenericBatchKeepsResultsIndexAligned) {
  // Slot i must hold run_one(i)'s result regardless of which worker ran it.
  const size_t n = 64;
  BatchOptions batch_options;
  batch_options.num_threads = 4;
  BatchResult batch = RunDiscoveryBatch(
      n,
      [](size_t i) {
        DiscoveryResult r;
        TableResult tr;
        tr.table_id = static_cast<TableId>(i);
        tr.joinability = static_cast<int64_t>(i);
        r.top_k.push_back(tr);
        r.stats.rows_checked = i;
        return r;
      },
      batch_options);
  ASSERT_EQ(batch.results.size(), n);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(batch.results[i].top_k.size(), 1u);
    EXPECT_EQ(batch.results[i].top_k[0].joinability,
              static_cast<int64_t>(i));
  }
  EXPECT_EQ(batch.stats.rows_checked, n * (n - 1) / 2);
}

TEST(DiscoveryEngineTest, RunnerSystemsAgreeAcrossThreadCounts) {
  // The five SystemKinds ride the same fan-out; spot-check MATE options
  // permutations through DiscoverBatch with exclusions intact.
  Fixture f = MakeFixture(6);
  DiscoveryEngine engine(&f.corpus, f.index.get());
  DiscoveryOptions options;
  options.k = 3;
  options.use_row_filter = false;  // SCR shape
  BatchOptions one, many;
  one.num_threads = 1;
  many.num_threads = 4;
  BatchResult a = engine.DiscoverBatch(ToBatch(f.queries), options, one);
  BatchResult b = engine.DiscoverBatch(ToBatch(f.queries), options, many);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t q = 0; q < a.results.size(); ++q) {
    ExpectSameResult(a.results[q], b.results[q], q);
  }
}

}  // namespace
}  // namespace mate
