// Phased Session::Open (async cold start): a lazily opened session must be
// observationally identical to an eagerly opened one. Discover issued
// immediately after Open returns races the warmup latch on purpose — it
// must block on readiness and return results bit-identical to eager load
// across threads {1,4} and shards {1,8} (the serial-pool case exercises the
// dedicated loader thread, the 4-thread case the pool task; TSan guards the
// latch discipline). Lazy sessions here are lazy on BOTH axes: the index
// streams behind the readiness latch while corpus tables materialize on
// demand, with queries racing the background corpus warmer. Also covers:
// DiscoverBatch racing the latches, Save draining load + warmer,
// move/destroy while warming, the eager_load / eager_corpus escape
// hatches, header-served corpus stats, cold-table residency, v1 corpus
// compatibility, and cell-blob corruption surfacing from the query paths.

#include "core/session.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "storage/corpus_io.h"
#include "util/rng.h"
#include "workload/query_gen.h"
#include "workload/vocabulary.h"

namespace mate {
namespace {

// Deterministic planted-join world (same recipe as session_test.cpp).
struct World {
  Corpus corpus;
  std::vector<QueryCase> queries;
};

World MakeWorld() {
  World w;
  Rng rng(7);
  Vocabulary vocab = Vocabulary::Generate(120, Vocabulary::Style::kWords, 11);
  for (size_t t = 0; t < 20; ++t) {
    Table table("t" + std::to_string(t));
    size_t cols = 3 + rng.Uniform(3);
    for (size_t c = 0; c < cols; ++c) table.AddColumn("c" + std::to_string(c));
    size_t rows = 4 + rng.Uniform(16);
    for (size_t r = 0; r < rows; ++r) {
      std::vector<std::string> cells;
      for (size_t c = 0; c < cols; ++c) {
        cells.push_back(vocab.word(rng.Uniform(vocab.size())));
      }
      (void)table.AppendRow(std::move(cells));
    }
    w.corpus.AddTable(std::move(table));
  }
  QuerySetSpec spec;
  spec.num_queries = 6;
  spec.query_rows = 20;
  spec.query_columns = 4;
  spec.key_size = 2;
  spec.planted_tables = 5;
  spec.seed = 3;
  w.queries = GenerateQueries(&w.corpus, vocab, spec);
  return w;
}

struct SavedWorld {
  World world;
  std::string corpus_path;
  std::string index_path;
};

// Builds the world's index once and persists the pair for path-based opens.
SavedWorld SaveWorld(const std::string& tag) {
  SavedWorld saved;
  saved.world = MakeWorld();
  saved.corpus_path = testing::TempDir() + "/mate_async_" + tag + ".corpus";
  saved.index_path = testing::TempDir() + "/mate_async_" + tag + ".index";
  SessionOptions build;
  build.corpus = MakeWorld().corpus;  // identical bytes to saved.world
  build.build_index = true;
  auto session = Session::Open(std::move(build));
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_TRUE(session->Save(saved.corpus_path, saved.index_path).ok());
  return saved;
}

void RemoveWorld(const SavedWorld& saved) {
  std::remove(saved.corpus_path.c_str());
  std::remove(saved.index_path.c_str());
}

Session OpenPaths(const std::string& corpus_path,
                  const std::string& index_path, unsigned num_threads,
                  bool eager, bool warm_corpus = true) {
  SessionOptions options;
  options.corpus_path = corpus_path;
  options.index_path = index_path;
  options.num_threads = num_threads;
  options.cache_bytes = 0;  // every query pays full cost: real races only
  // `eager` means eager on both axes: blocking index load AND fully
  // materialized corpus — the pre-lazy reference behavior.
  options.eager_load = eager;
  options.eager_corpus = eager;
  options.warm_corpus = warm_corpus;
  auto session = Session::Open(std::move(options));
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return std::move(*session);
}

Session OpenSaved(const SavedWorld& saved, unsigned num_threads, bool eager,
                  bool warm_corpus = true) {
  return OpenPaths(saved.corpus_path, saved.index_path, num_threads, eager,
                   warm_corpus);
}

std::vector<QuerySpec> MakeSpecs(const World& world, unsigned threads,
                                 size_t shards) {
  std::vector<QuerySpec> specs;
  for (const QueryCase& qc : world.queries) {
    QuerySpec spec;
    spec.table = &qc.query;
    spec.key_columns = qc.key_columns;
    spec.options.k = 5;
    spec.intra_query_threads = threads;
    spec.intra_query_shards = shards;
    specs.push_back(std::move(spec));
  }
  return specs;
}

void ExpectBitIdentical(const DiscoveryResult& a, const DiscoveryResult& b) {
  ASSERT_EQ(a.top_k.size(), b.top_k.size());
  for (size_t i = 0; i < a.top_k.size(); ++i) {
    EXPECT_EQ(a.top_k[i].table_id, b.top_k[i].table_id);
    EXPECT_EQ(a.top_k[i].joinability, b.top_k[i].joinability);
    EXPECT_EQ(a.top_k[i].best_mapping, b.top_k[i].best_mapping);
  }
  EXPECT_EQ(a.stats.pl_items_fetched, b.stats.pl_items_fetched);
  EXPECT_EQ(a.stats.candidate_tables, b.stats.candidate_tables);
  EXPECT_EQ(a.stats.tables_evaluated, b.stats.tables_evaluated);
  EXPECT_EQ(a.stats.rows_checked, b.stats.rows_checked);
  EXPECT_EQ(a.stats.rows_sent_to_verification,
            b.stats.rows_sent_to_verification);
  EXPECT_EQ(a.stats.rows_true_positive, b.stats.rows_true_positive);
  EXPECT_EQ(a.stats.value_comparisons, b.stats.value_comparisons);
}

// ---- the core property ---------------------------------------------

TEST(SessionOpenAsyncTest, LazyMatchesEagerAcrossThreadsAndShards) {
  SavedWorld saved = SaveWorld("property");
  for (unsigned threads : {1u, 4u}) {
    for (size_t shards : {size_t{1}, size_t{8}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " shards=" + std::to_string(shards));
      // Eager reference at the same execution knobs (the knobs change work
      // counters, so the reference must share them for a full bit-compare).
      Session eager = OpenSaved(saved, threads, /*eager=*/true);
      EXPECT_TRUE(eager.index_ready());
      const std::vector<QuerySpec> specs =
          MakeSpecs(saved.world, threads, shards);
      std::vector<DiscoveryResult> reference;
      for (const QuerySpec& spec : specs) {
        auto result = eager.Discover(spec);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        reference.push_back(std::move(*result));
      }

      // Lazy session: the first Discover races the warmup latch.
      Session lazy = OpenSaved(saved, threads, /*eager=*/false);
      for (size_t q = 0; q < specs.size(); ++q) {
        auto result = lazy.Discover(specs[q]);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        ExpectBitIdentical(reference[q], *result);
      }
      EXPECT_TRUE(lazy.index_ready());
      EXPECT_TRUE(lazy.WaitUntilReady().ok());
    }
  }
  RemoveWorld(saved);
}

TEST(SessionOpenAsyncTest, BatchIssuedImmediatelyAfterOpenMatchesEager) {
  SavedWorld saved = SaveWorld("batch");
  const std::vector<QuerySpec> specs = MakeSpecs(saved.world, 1, 0);

  Session eager = OpenSaved(saved, /*num_threads=*/4, /*eager=*/true);
  auto reference = eager.DiscoverBatch(specs);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  Session lazy = OpenSaved(saved, /*num_threads=*/4, /*eager=*/false);
  auto raced = lazy.DiscoverBatch(specs);  // races the pool-task warmup
  ASSERT_TRUE(raced.ok()) << raced.status().ToString();
  ASSERT_EQ(reference->results.size(), raced->results.size());
  for (size_t q = 0; q < reference->results.size(); ++q) {
    ExpectBitIdentical(reference->results[q], raced->results[q]);
  }
  RemoveWorld(saved);
}

// ---- lifecycle around the latch ------------------------------------

TEST(SessionOpenAsyncTest, WaitUntilReadyIsIdempotentAndSettles) {
  SavedWorld saved = SaveWorld("settle");
  Session lazy = OpenSaved(saved, /*num_threads=*/1, /*eager=*/false);
  EXPECT_TRUE(lazy.WaitUntilReady().ok());
  EXPECT_TRUE(lazy.index_ready());
  EXPECT_TRUE(lazy.WaitUntilReady().ok());  // second wait returns instantly
  RemoveWorld(saved);
}

TEST(SessionOpenAsyncTest, SaveImmediatelyAfterPhasedOpenRoundTrips) {
  SavedWorld saved = SaveWorld("resave");
  const std::string corpus_copy = testing::TempDir() + "/mate_async_c2.corpus";
  const std::string index_copy = testing::TempDir() + "/mate_async_c2.index";
  {
    Session lazy = OpenSaved(saved, /*num_threads=*/4, /*eager=*/false);
    // Save must drain the load — a half-streamed index must never hit disk.
    ASSERT_TRUE(lazy.Save(corpus_copy, index_copy).ok());
  }
  Session reopened =
      OpenPaths(corpus_copy, index_copy, /*num_threads=*/1, /*eager=*/true);
  Session original = OpenSaved(saved, /*num_threads=*/1, /*eager=*/true);
  for (const QuerySpec& spec : MakeSpecs(saved.world, 1, 0)) {
    auto a = original.Discover(spec);
    auto b = reopened.Discover(spec);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectBitIdentical(*a, *b);
  }
  std::remove(corpus_copy.c_str());
  std::remove(index_copy.c_str());
  RemoveWorld(saved);
}

TEST(SessionOpenAsyncTest, MoveWhileWarmingStaysSafe) {
  SavedWorld saved = SaveWorld("move");
  const std::vector<QuerySpec> specs = MakeSpecs(saved.world, 1, 0);
  Session reference = OpenSaved(saved, /*num_threads=*/1, /*eager=*/true);
  for (unsigned threads : {1u, 4u}) {
    Session lazy = OpenSaved(saved, threads, /*eager=*/false);
    Session moved = std::move(lazy);  // latch state survives the move
    Session target = OpenSaved(saved, threads, /*eager=*/false);
    target = std::move(moved);  // move-assign quiesces the old load
    auto result = target.Discover(specs[0]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto expected = reference.Discover(specs[0]);
    ASSERT_TRUE(expected.ok());
    ExpectBitIdentical(*expected, *result);
  }
  RemoveWorld(saved);
}

TEST(SessionOpenAsyncTest, DestroyWhileWarmingIsClean) {
  SavedWorld saved = SaveWorld("destroy");
  // Never queried: the destructor alone must quiesce the loader (ASan/TSan
  // turn a lifetime bug here into a hard failure).
  for (unsigned threads : {1u, 4u}) {
    for (int round = 0; round < 3; ++round) {
      Session lazy = OpenSaved(saved, threads, /*eager=*/false);
    }
  }
  RemoveWorld(saved);
}

TEST(SessionOpenAsyncTest, CorpusOnlySessionIsAlwaysReady) {
  SessionOptions options;
  options.corpus = MakeWorld().corpus;
  auto session = Session::Open(std::move(options));
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session->index_ready());
  EXPECT_TRUE(session->WaitUntilReady().ok());
}

TEST(SessionOpenAsyncTest, EagerLoadEscapeHatchIsReadyAtOpenReturn) {
  SavedWorld saved = SaveWorld("eager");
  Session eager = OpenSaved(saved, /*num_threads=*/4, /*eager=*/true);
  EXPECT_TRUE(eager.index_ready());  // no latch, no background work
  EXPECT_TRUE(eager.WaitUntilReady().ok());
  EXPECT_GT(eager.index().NumPostingEntries(), 0u);
  // eager_corpus: every cell resident before Open returned.
  EXPECT_TRUE(eager.corpus_resident());
  EXPECT_TRUE(eager.WaitCorpusResident().ok());
  RemoveWorld(saved);
}

// ---- corpus-side laziness ------------------------------------------

// A table stuffed with values no generated query ever probes: candidates
// come from the index, so nothing should ever materialize it.
Table MakeColdTable(size_t rows) {
  Table cold("zz_cold");
  for (int c = 0; c < 4; ++c) cold.AddColumn("cc" + std::to_string(c));
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> cells;
    for (int c = 0; c < 4; ++c) {
      cells.push_back("zzcold" + std::to_string(r % 13) + "_" +
                      std::to_string(c));
    }
    (void)cold.AppendRow(std::move(cells));
  }
  return cold;
}

// World + cold table, built and persisted once.
struct ColdWorld {
  SavedWorld saved;
  TableId cold_id = 0;
};

ColdWorld SaveColdWorld(const std::string& tag) {
  ColdWorld cold;
  cold.saved.world = MakeWorld();
  Corpus corpus = MakeWorld().corpus;  // identical bytes to saved.world
  cold.cold_id = corpus.AddTable(MakeColdTable(64));
  (void)cold.saved.world.corpus.AddTable(MakeColdTable(64));
  cold.saved.corpus_path =
      testing::TempDir() + "/mate_async_" + tag + ".corpus";
  cold.saved.index_path = testing::TempDir() + "/mate_async_" + tag + ".index";
  SessionOptions build;
  build.corpus = std::move(corpus);
  build.build_index = true;
  auto session = Session::Open(std::move(build));
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_TRUE(
      session->Save(cold.saved.corpus_path, cold.saved.index_path).ok());
  return cold;
}

TEST(SessionOpenAsyncTest, QueriesLeaveUntouchedTablesCold) {
  ColdWorld cold = SaveColdWorld("cold");
  Session reference = OpenSaved(cold.saved, /*num_threads=*/1, /*eager=*/true);
  // No warmer: residency is driven by queries alone, so the check below is
  // deterministic.
  Session lazy = OpenSaved(cold.saved, /*num_threads=*/4, /*eager=*/false,
                           /*warm_corpus=*/false);
  EXPECT_EQ(lazy.corpus().tables_resident(), 0u);
  for (const QuerySpec& spec : MakeSpecs(cold.saved.world, 1, 0)) {
    auto result = lazy.Discover(spec);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto expected = reference.Discover(spec);
    ASSERT_TRUE(expected.ok());
    ExpectBitIdentical(*expected, *result);
  }
  // Candidate tables materialized on demand; the cold table did not.
  EXPECT_GT(lazy.corpus().tables_resident(), 0u);
  EXPECT_FALSE(lazy.corpus().table_resident(cold.cold_id));
  EXPECT_FALSE(lazy.corpus_resident());
  // Draining residency afterwards changes no answers.
  EXPECT_TRUE(lazy.WaitCorpusResident().ok());
  EXPECT_TRUE(lazy.corpus().table_resident(cold.cold_id));
  RemoveWorld(cold.saved);
}

TEST(SessionOpenAsyncTest, WaitCorpusResidentDrainsTheWarmer) {
  SavedWorld saved = SaveWorld("drain");
  Session lazy = OpenSaved(saved, /*num_threads=*/4, /*eager=*/false);
  EXPECT_TRUE(lazy.WaitCorpusResident().ok());
  EXPECT_TRUE(lazy.corpus_resident());
  EXPECT_TRUE(CorporaEqual(saved.world.corpus, lazy.corpus()));
  // Idempotent once drained.
  EXPECT_TRUE(lazy.WaitCorpusResident().ok());
  RemoveWorld(saved);
}

TEST(SessionOpenAsyncTest, CorpusStatsComeFromTheHeaderWithoutAScan) {
  SavedWorld saved = SaveWorld("stats");
  const CorpusStats expected = saved.world.corpus.ComputeStats();
  // Corpus-only session (no index to supply stats), no warmer: any stats
  // scan would have to materialize tables, so zero residency proves the
  // snapshot came from the v2 header.
  SessionOptions options;
  options.corpus_path = saved.corpus_path;
  options.warm_corpus = false;
  auto session = Session::Open(std::move(options));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(session->corpus().tables_resident(), 0u);
  EXPECT_TRUE(session->corpus_stats() == expected);
  RemoveWorld(saved);
}

TEST(SessionOpenAsyncTest, V1CorpusFileLoadsThroughTheLegacyPath) {
  SavedWorld saved = SaveWorld("v1compat");
  // Rewrite the corpus file as format v1; the index still matches (same
  // tables), so cross-validation and discovery must work — just eagerly.
  std::string v1;
  SerializeCorpusV1(saved.world.corpus, &v1);
  ASSERT_TRUE(WriteFileAtomic(saved.corpus_path, v1).ok());
  Session session = OpenSaved(saved, /*num_threads=*/1, /*eager=*/false);
  EXPECT_TRUE(session.corpus_resident());  // legacy load has nothing lazy
  Session reference = OpenSaved(saved, /*num_threads=*/1, /*eager=*/true);
  for (const QuerySpec& spec : MakeSpecs(saved.world, 1, 0)) {
    auto a = session.Discover(spec);
    auto b = reference.Discover(spec);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok());
    ExpectBitIdentical(*b, *a);
  }
  RemoveWorld(saved);
}

TEST(SessionOpenAsyncTest, CellBlobCorruptionSurfacesFromQueryPaths) {
  SavedWorld saved = SaveWorld("corrupt");
  auto bytes = ReadFileToString(saved.corpus_path);
  ASSERT_TRUE(bytes.ok());
  // Find a byte flip near the end of the image (inside the cell region)
  // that leaves the header — and thus the lazy open + shape validation —
  // intact but breaks a cell blob's parse.
  std::string corrupt;
  const std::string probe_path = saved.corpus_path + ".probe";
  for (size_t back = 1; back <= 256 && corrupt.empty(); ++back) {
    std::string mutated = *bytes;
    const size_t offset = mutated.size() - back;
    mutated[offset] = static_cast<char>(mutated[offset] ^ 0x80);
    ASSERT_TRUE(WriteFileAtomic(probe_path, mutated).ok());
    auto probe = OpenCorpusLazy(probe_path);
    std::remove(probe_path.c_str());
    ASSERT_TRUE(probe.ok()) << "a cell-region flip must not break the "
                               "header: " << probe.status().ToString();
    if (probe->MaterializeAll().ok()) continue;  // content-only flip
    corrupt = std::move(mutated);
  }
  ASSERT_FALSE(corrupt.empty()) << "no flip broke a cell blob";
  ASSERT_TRUE(WriteFileAtomic(saved.corpus_path, corrupt).ok());

  SessionOptions options;
  options.corpus_path = saved.corpus_path;
  options.index_path = saved.index_path;
  options.cache_bytes = 0;
  auto session = Session::Open(std::move(options));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  // Deterministic surfacing: drain residency, then query.
  Status resident = session->WaitCorpusResident();
  EXPECT_FALSE(resident.ok());
  EXPECT_TRUE(resident.IsCorruption());
  EXPECT_NE(resident.message().find("byte offset"), std::string::npos);
  const std::vector<QuerySpec> specs = MakeSpecs(saved.world, 1, 0);
  auto result = session->Discover(specs[0]);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
  auto batch = session->DiscoverBatch(specs);
  EXPECT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsCorruption());
  // Save must refuse to persist stub tables.
  EXPECT_FALSE(
      session->Save(saved.corpus_path + ".out", saved.index_path + ".out")
          .ok());
  RemoveWorld(saved);
}

}  // namespace
}  // namespace mate