#include "index/index_shards.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

namespace mate {
namespace {

// Every partition must tile [0, n) exactly: contiguous, disjoint, in order,
// no empty range.
void ExpectTiles(const IndexShards& shards, size_t num_tables) {
  ASSERT_GT(shards.num_shards(), 0u);
  EXPECT_EQ(shards.range(0).begin, 0u);
  for (size_t s = 0; s < shards.num_shards(); ++s) {
    const ShardRange& r = shards.range(s);
    EXPECT_LT(r.begin, r.end) << "empty shard " << s;
    if (s > 0) EXPECT_EQ(r.begin, shards.range(s - 1).end);
  }
  EXPECT_EQ(shards.range(shards.num_shards() - 1).end, num_tables);
}

TEST(IndexShardsTest, UniformWeightsSplitEvenly) {
  const std::vector<uint64_t> weights(12, 10);
  IndexShards shards = IndexShards::BuildFromWeights(weights, 4);
  ASSERT_EQ(shards.num_shards(), 4u);
  ExpectTiles(shards, weights.size());
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(shards.range(s).NumTables(), 3u);
    EXPECT_EQ(shards.planned_weight(s), 30u);
  }
}

TEST(IndexShardsTest, FewerTablesThanShardsCapsShardCount) {
  const std::vector<uint64_t> weights = {5, 5, 5};
  IndexShards shards = IndexShards::BuildFromWeights(weights, 8);
  ASSERT_EQ(shards.num_shards(), 3u);
  ExpectTiles(shards, weights.size());
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(shards.range(s).NumTables(), 1u);
  }
}

TEST(IndexShardsTest, EmptyInputsYieldNoShards) {
  EXPECT_EQ(IndexShards::BuildFromWeights({}, 4).num_shards(), 0u);
  EXPECT_EQ(IndexShards::BuildFromWeights({1, 2, 3}, 0).num_shards(), 0u);
  Corpus empty;
  EXPECT_EQ(IndexShards::Build(empty, 4).num_shards(), 0u);
}

TEST(IndexShardsTest, OneGiantTableDoesNotStarveLaterShards) {
  // Table 0 carries ~all the weight; the remaining tables must still be
  // spread over the remaining shards instead of piling into shard 0.
  std::vector<uint64_t> weights = {1000, 1, 1, 1, 1, 1, 1, 1, 1};
  IndexShards shards = IndexShards::BuildFromWeights(weights, 4);
  ASSERT_EQ(shards.num_shards(), 4u);
  ExpectTiles(shards, weights.size());
  EXPECT_EQ(shards.range(0).NumTables(), 1u);  // the giant, alone
  // The eight light tables spread over the remaining three shards.
  size_t light_tables = 0;
  for (size_t s = 1; s < 4; ++s) light_tables += shards.range(s).NumTables();
  EXPECT_EQ(light_tables, 8u);
  for (size_t s = 1; s < 4; ++s) {
    EXPECT_GE(shards.range(s).NumTables(), 2u);
  }
}

TEST(IndexShardsTest, AllZeroWeightsStillTileTheTableSpace) {
  const std::vector<uint64_t> weights(6, 0);
  IndexShards shards = IndexShards::BuildFromWeights(weights, 3);
  ASSERT_EQ(shards.num_shards(), 3u);
  ExpectTiles(shards, weights.size());
}

TEST(IndexShardsTest, SkewedWeightsStayNearBalanced) {
  // A mildly skewed corpus: no planned shard should exceed 2x the ideal
  // share (the greedy remaining-average rule adapts as it walks).
  std::vector<uint64_t> weights;
  for (size_t t = 0; t < 100; ++t) weights.push_back(10 + (t % 7) * 5);
  const uint64_t total =
      std::accumulate(weights.begin(), weights.end(), uint64_t{0});
  IndexShards shards = IndexShards::BuildFromWeights(weights, 8);
  ASSERT_EQ(shards.num_shards(), 8u);
  ExpectTiles(shards, weights.size());
  uint64_t planned_total = 0;
  for (size_t s = 0; s < 8; ++s) {
    EXPECT_LE(shards.planned_weight(s), 2 * total / 8) << "shard " << s;
    planned_total += shards.planned_weight(s);
  }
  EXPECT_EQ(planned_total, total);
}

TEST(IndexShardsTest, ShardOfAgreesWithRanges) {
  std::vector<uint64_t> weights = {3, 9, 1, 1, 7, 2, 2, 5, 4, 6};
  IndexShards shards = IndexShards::BuildFromWeights(weights, 4);
  ExpectTiles(shards, weights.size());
  for (TableId t = 0; t < weights.size(); ++t) {
    const size_t s = shards.ShardOf(t);
    EXPECT_GE(t, shards.range(s).begin);
    EXPECT_LT(t, shards.range(s).end);
  }
}

TEST(IndexShardsTest, BuildFromCorpusWeighsCells) {
  Corpus corpus;
  // Table 0: 8 rows x 2 cols = 16 cells; tables 1-4: 2x2 = 4 cells each.
  for (int i = 0; i < 5; ++i) {
    Table t("t" + std::to_string(i));
    t.AddColumn("a");
    t.AddColumn("b");
    const int rows = i == 0 ? 8 : 2;
    for (int r = 0; r < rows; ++r) {
      (void)t.AppendRow({"x" + std::to_string(r), "y"});
    }
    corpus.AddTable(std::move(t));
  }
  IndexShards shards = IndexShards::Build(corpus, 2);
  ASSERT_EQ(shards.num_shards(), 2u);
  ExpectTiles(shards, corpus.NumTables());
  // The 16-cell table alone outweighs the four 4-cell tables together.
  EXPECT_EQ(shards.range(0).NumTables(), 1u);
  EXPECT_EQ(shards.planned_weight(0), 16u);
  EXPECT_EQ(shards.planned_weight(1), 16u);
}

}  // namespace
}  // namespace mate
