#include "core/result_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace mate {
namespace {

DiscoveryResult MakeResult(int64_t joinability, uint64_t rows_checked = 0) {
  DiscoveryResult result;
  TableResult tr;
  tr.table_id = 1;
  tr.joinability = joinability;
  tr.best_mapping = {0, 1};
  result.top_k.push_back(tr);
  result.stats.rows_checked = rows_checked;
  result.stats.runtime_seconds = 0.25;
  return result;
}

void ExpectSame(const DiscoveryResult& a, const DiscoveryResult& b) {
  ASSERT_EQ(a.top_k.size(), b.top_k.size());
  for (size_t i = 0; i < a.top_k.size(); ++i) {
    EXPECT_EQ(a.top_k[i].table_id, b.top_k[i].table_id);
    EXPECT_EQ(a.top_k[i].joinability, b.top_k[i].joinability);
    EXPECT_EQ(a.top_k[i].best_mapping, b.top_k[i].best_mapping);
  }
  // The cached copy is verbatim: nondeterministic fields included.
  EXPECT_EQ(a.stats.rows_checked, b.stats.rows_checked);
  EXPECT_DOUBLE_EQ(a.stats.runtime_seconds, b.stats.runtime_seconds);
}

TEST(ResultCacheTest, MissThenHitReturnsVerbatimCopy) {
  ResultCache cache(1 << 20);
  DiscoveryResult out;
  EXPECT_FALSE(cache.Lookup("q1", &out));
  const DiscoveryResult original = MakeResult(7, 42);
  cache.Insert("q1", original);
  ASSERT_TRUE(cache.Lookup("q1", &out));
  ExpectSame(original, out);
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Budget fits roughly three entries; key sizes dominate deterministically.
  const std::string pad(200, 'x');
  const size_t entry_bytes = pad.size() + 2 +
                             ResultCache::ApproxResultBytes(MakeResult(1)) +
                             128;
  ResultCache cache(3 * entry_bytes + entry_bytes / 2);
  cache.Insert("a-" + pad, MakeResult(1));
  cache.Insert("b-" + pad, MakeResult(2));
  cache.Insert("c-" + pad, MakeResult(3));
  EXPECT_EQ(cache.stats().entries, 3u);

  // Touch "a" so "b" becomes the LRU victim.
  DiscoveryResult out;
  ASSERT_TRUE(cache.Lookup("a-" + pad, &out));
  cache.Insert("d-" + pad, MakeResult(4));

  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.Lookup("a-" + pad, &out));
  EXPECT_FALSE(cache.Lookup("b-" + pad, &out));  // evicted
  EXPECT_TRUE(cache.Lookup("c-" + pad, &out));
  EXPECT_TRUE(cache.Lookup("d-" + pad, &out));
}

TEST(ResultCacheTest, OversizedEntryIsNeverAdmitted) {
  ResultCache cache(64);  // smaller than any entry's fixed overhead
  cache.Insert("key", MakeResult(1));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  DiscoveryResult out;
  EXPECT_FALSE(cache.Lookup("key", &out));
}

TEST(ResultCacheTest, OversizedRefreshDropsTheKeyNotTheCache) {
  // Refreshing an existing key with an over-budget value must honor the
  // admission guard: the key is dropped, every other entry survives.
  ResultCache cache(2048);
  cache.Insert("victim", MakeResult(1));
  cache.Insert("bystander", MakeResult(2));
  ASSERT_EQ(cache.stats().entries, 2u);

  DiscoveryResult huge = MakeResult(3);
  huge.top_k.resize(200, huge.top_k[0]);  // far beyond the 2 KB budget
  cache.Insert("victim", huge);

  DiscoveryResult out;
  EXPECT_FALSE(cache.Lookup("victim", &out));
  EXPECT_TRUE(cache.Lookup("bystander", &out));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_LE(cache.stats().bytes, 2048u);
}

TEST(ResultCacheTest, ReinsertRefreshesValueWithoutDuplicating) {
  ResultCache cache(1 << 20);
  cache.Insert("q", MakeResult(1));
  cache.Insert("q", MakeResult(2));
  EXPECT_EQ(cache.stats().entries, 1u);
  DiscoveryResult out;
  ASSERT_TRUE(cache.Lookup("q", &out));
  EXPECT_EQ(out.top_k[0].joinability, 2);
}

TEST(ResultCacheTest, ClearDropsEntriesButKeepsCumulativeCounters) {
  ResultCache cache(1 << 20);
  cache.Insert("q", MakeResult(1));
  DiscoveryResult out;
  ASSERT_TRUE(cache.Lookup("q", &out));
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);  // history survives invalidation
  EXPECT_FALSE(cache.Lookup("q", &out));
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCachePartitionTest, PartitionsNeverShareEntries) {
  // The multi-tenant invariant: the same fingerprint in two partitions is
  // two independent entries; neither tenant can observe the other's cached
  // results.
  ResultCache cache(1 << 20);
  cache.Insert("acme", "q", MakeResult(1));
  cache.Insert("globex", "q", MakeResult(2));
  DiscoveryResult out;
  ASSERT_TRUE(cache.Lookup("acme", "q", &out));
  EXPECT_EQ(out.top_k[0].joinability, 1);
  ASSERT_TRUE(cache.Lookup("globex", "q", &out));
  EXPECT_EQ(out.top_k[0].joinability, 2);
  // The default partition (legacy 2-arg API) is just another partition.
  EXPECT_FALSE(cache.Lookup("q", &out));
  EXPECT_EQ(cache.partition_stats("acme").entries, 1u);
  EXPECT_EQ(cache.partition_stats("globex").entries, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);  // aggregate sums partitions
}

TEST(ResultCachePartitionTest, IndependentByteBudgets) {
  const std::string pad(200, 'x');
  const size_t entry_bytes = pad.size() + 2 +
                             ResultCache::ApproxResultBytes(MakeResult(1)) +
                             128;
  ResultCache cache(1 << 20);  // roomy default for every other partition
  cache.ConfigurePartition("small", 2 * entry_bytes + entry_bytes / 2);

  // Three inserts into "small" evict its own LRU entry...
  cache.Insert("small", "a-" + pad, MakeResult(1));
  cache.Insert("small", "b-" + pad, MakeResult(2));
  cache.Insert("small", "c-" + pad, MakeResult(3));
  EXPECT_EQ(cache.partition_stats("small").entries, 2u);
  EXPECT_EQ(cache.partition_stats("small").evictions, 1u);
  DiscoveryResult out;
  EXPECT_FALSE(cache.Lookup("small", "a-" + pad, &out));

  // ...while an unbudgeted partition holding the same keys is untouched.
  cache.Insert("big", "a-" + pad, MakeResult(1));
  cache.Insert("big", "b-" + pad, MakeResult(2));
  cache.Insert("big", "c-" + pad, MakeResult(3));
  EXPECT_EQ(cache.partition_stats("big").entries, 3u);
  EXPECT_EQ(cache.partition_stats("big").evictions, 0u);
}

TEST(ResultCachePartitionTest, ConfigurePartitionResizeEvictsDown) {
  const std::string pad(200, 'x');
  ResultCache cache(1 << 20);
  cache.Insert("t", "a-" + pad, MakeResult(1));
  cache.Insert("t", "b-" + pad, MakeResult(2));
  cache.Insert("t", "c-" + pad, MakeResult(3));
  ASSERT_EQ(cache.partition_stats("t").entries, 3u);
  // Shrinking the budget evicts LRU-first until the partition fits.
  const size_t one_entry = cache.partition_stats("t").bytes / 3 + 64;
  cache.ConfigurePartition("t", one_entry);
  EXPECT_LE(cache.partition_stats("t").bytes, one_entry);
  EXPECT_LT(cache.partition_stats("t").entries, 3u);
  DiscoveryResult out;
  EXPECT_TRUE(cache.Lookup("t", "c-" + pad, &out));  // MRU survives
}

TEST(ResultCachePartitionTest, ClearPartitionIsScoped) {
  ResultCache cache(1 << 20);
  cache.Insert("acme", "q", MakeResult(1));
  cache.Insert("globex", "q", MakeResult(2));
  EXPECT_TRUE(cache.ClearPartition("acme"));
  DiscoveryResult out;
  EXPECT_FALSE(cache.Lookup("acme", "q", &out));
  EXPECT_TRUE(cache.Lookup("globex", "q", &out));  // bystander survives
  // Clearing a partition that was never touched reports false.
  EXPECT_FALSE(cache.ClearPartition("initech"));
  // Clear() drops every partition's entries.
  cache.Clear();
  EXPECT_FALSE(cache.Lookup("globex", "q", &out));
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheTest, ConcurrentProbesAndInsertsAreSafe) {
  // 4 threads hammer a small working set; TSan/ASan runs make this a data
  // -race canary for the shared-cache batch path.
  ResultCache cache(1 << 16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        std::string key = "k";
        key += std::to_string((i * 7 + t) % 16);
        DiscoveryResult out;
        if (!cache.Lookup(key, &out)) {
          cache.Insert(key, MakeResult((i * 7 + t) % 16));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 2000u);
  EXPECT_LE(stats.entries, 16u);
}

}  // namespace
}  // namespace mate
