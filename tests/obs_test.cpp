// Observability layer: MetricsRegistry exactness under concurrency,
// Prometheus exposition (golden page, label escaping, histogram buckets),
// QueryTrace span recording (nesting, self times, exports), the
// allocation-free trace-off path, and end-to-end phase coverage of a
// traced Session::Discover.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/discovery_engine.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/math_util.h"

// ---- allocation counter ------------------------------------------------
// This test binary's global new counts allocations so the trace-off path
// can be pinned as allocation-free. Only the delta matters; the counter
// itself must not allocate.
namespace {
std::atomic<size_t> g_allocations{0};
}  // namespace

void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

// The nothrow variant must route through the same allocator as the
// throwing one: libstdc++'s temporary buffers allocate nothrow but free
// through plain operator delete, and ASan flags the pairing otherwise.
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace mate {
namespace {

// ---- MetricsRegistry ---------------------------------------------------

TEST(MetricsRegistryTest, CounterTotalsAreExactUnderConcurrency) {
  MetricsRegistry registry;
  Counter* counter = registry.RegisterCounter("test_total", "help");
  ASSERT_NE(counter, nullptr);
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
}

TEST(MetricsRegistryTest, HistogramLosesNoSamplesUnderConcurrency) {
  MetricsRegistry registry;
  Histogram* hist =
      registry.RegisterHistogram("test_latency_us", "help", 1e-6);
  ASSERT_NE(hist, nullptr);
  constexpr int kThreads = 6;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([hist, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        hist->Record(i % 1000 + static_cast<uint64_t>(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(hist->Snapshot().count(), kThreads * kPerThread);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentPerNameAndLabels) {
  MetricsRegistry registry;
  Counter* a = registry.RegisterCounter("m_total", "events");
  Counter* b = registry.RegisterCounter("m_total", "events");
  EXPECT_EQ(a, b) << "same (name, labels) must return the same cell";
  Counter* labeled = registry.RegisterCounter("m_total", "events",
                                              {{"tenant", "x"}});
  EXPECT_NE(a, labeled) << "distinct labels are distinct series";
  EXPECT_EQ(labeled,
            registry.RegisterCounter("m_total", "events", {{"tenant", "x"}}));
  a->Increment(3);
  b->Increment(2);
  EXPECT_EQ(a->Value(), 5u);
}

TEST(MetricsRegistryTest, TypeMismatchOnSameNameReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.RegisterCounter("m_total", "events"), nullptr);
  EXPECT_EQ(registry.RegisterGauge("m_total", "events"), nullptr);
  EXPECT_EQ(registry.RegisterHistogram("m_total", "events"), nullptr);
  ASSERT_NE(registry.RegisterGauge("m_depth", "depth"), nullptr);
  EXPECT_EQ(registry.RegisterCounter("m_depth", "depth"), nullptr);
}

TEST(MetricsRegistryTest, EscapeLabelValueHandlesSpecials) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("a\nb"), "a\\nb");
}

TEST(MetricsRegistryTest, PrometheusExpositionGoldenPage) {
  MetricsRegistry registry;
  Gauge* depth = registry.RegisterGauge("test_depth", "Depth.");
  Counter* events = registry.RegisterCounter("test_events_total",
                                             "Events seen.");
  Counter* labeled = registry.RegisterCounter(
      "test_labeled_total", "Labeled events.",
      {{"tenant", "a\"b\\c"}, {"zone", "x\ny"}});
  Histogram* latency = registry.RegisterHistogram(
      "test_latency_seconds", "Latency.", 1e-6, {1000, 1000000});
  ASSERT_NE(depth, nullptr);
  ASSERT_NE(events, nullptr);
  ASSERT_NE(labeled, nullptr);
  ASSERT_NE(latency, nullptr);
  depth->Set(7);
  events->Increment(3);
  labeled->Increment();
  latency->Record(500);      // -> <= 0.001s bucket
  latency->Record(2000000);  // -> only +Inf

  // Families in name order, series in registration order, label values
  // escaped, le bounds scaled into seconds.
  const std::string expected = R"(# HELP test_depth Depth.
# TYPE test_depth gauge
test_depth 7
# HELP test_events_total Events seen.
# TYPE test_events_total counter
test_events_total 3
# HELP test_labeled_total Labeled events.
# TYPE test_labeled_total counter
test_labeled_total{tenant="a\"b\\c",zone="x\ny"} 1
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.001"} 1
test_latency_seconds_bucket{le="1"} 1
test_latency_seconds_bucket{le="+Inf"} 2
test_latency_seconds_sum 2.0005
test_latency_seconds_count 2
)";
  EXPECT_EQ(registry.RenderPrometheusText(), expected);
}

// ---- QueryTrace --------------------------------------------------------

TEST(QueryTraceTest, SpansNestAndKeepBeginOrder) {
  QueryTrace trace("t");
  const uint32_t root = trace.BeginSpan("root");
  const uint32_t child = trace.BeginSpan("child", root);
  trace.EndSpan(child);
  trace.EndSpan(root);
  const std::vector<TraceSpan> spans = trace.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[0].parent, QueryTrace::kNoParent);
  EXPECT_EQ(spans[1].name, "child");
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_GE(spans[1].start_us, spans[0].start_us);
  // Child ended before root on the same clock: containment is exact.
  EXPECT_LE(spans[1].start_us + spans[1].duration_us,
            spans[0].start_us + spans[0].duration_us);
}

TEST(QueryTraceTest, SelfTimeSubtractsDirectChildren) {
  QueryTrace trace;
  const uint32_t root = trace.AddCompleteSpan("root", QueryTrace::kNoParent,
                                              0, 100);
  trace.AddCompleteSpan("a", root, 10, 30);
  const uint32_t b = trace.AddCompleteSpan("b", root, 40, 20);
  trace.AddCompleteSpan("b1", b, 45, 50);  // longer than b: b clamps at 0
  const std::vector<uint64_t> self = SelfTimesUs(trace.Spans());
  ASSERT_EQ(self.size(), 4u);
  EXPECT_EQ(self[0], 50u);  // 100 - 30 - 20; grandchild not subtracted
  EXPECT_EQ(self[1], 30u);
  EXPECT_EQ(self[2], 0u);  // clamped
  EXPECT_EQ(self[3], 50u);
}

TEST(QueryTraceTest, EpochRewindBackdatesSpansForPreTraceWork) {
  // Work that happened before the trace existed (a server reading a request
  // frame) is accounted by rewinding the epoch: a root begun at 0 covers
  // the rewound window, a complete span for the pre-trace work occupies
  // [0, rewind), and a span begun "now" starts at or after the rewind — so
  // the pre-trace span and its live siblings never overlap and SelfTimesUs
  // containment stays sound.
  const uint64_t rewind_us = 50000;
  QueryTrace trace("request", rewind_us);
  const uint32_t root =
      trace.BeginSpanAt("request", QueryTrace::kNoParent, 0);
  trace.AddCompleteSpan("read_frame", root, 0, rewind_us);
  const uint32_t decode = trace.BeginSpan("decode", root);
  trace.EndSpan(decode);
  trace.EndSpan(root);

  const std::vector<TraceSpan> spans = trace.Spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "request");
  EXPECT_EQ(spans[0].start_us, 0u);
  // The root's wall clock includes the pre-trace window.
  EXPECT_GE(spans[0].duration_us, rewind_us);
  EXPECT_EQ(spans[1].start_us, 0u);
  EXPECT_EQ(spans[1].duration_us, rewind_us);
  // Begun "now": at or past the rewound window, no sibling overlap.
  EXPECT_GE(spans[2].start_us, rewind_us);

  // Containment arithmetic: the root's self time is its wall minus both
  // direct children, never negative.
  const std::vector<uint64_t> self = SelfTimesUs(spans);
  ASSERT_EQ(self.size(), 3u);
  EXPECT_EQ(self[0],
            spans[0].duration_us - rewind_us - spans[2].duration_us);
}

TEST(QueryTraceTest, TraceOffPathDoesNotAllocate) {
  QueryTrace* off = nullptr;
  bool ids_stayed_null = true;
  const size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    ScopedSpan span(off, "phase");
    ScopedSpan child(off, "child", span.id());
    child.End();
    ids_stayed_null &= span.id() == QueryTrace::kNoParent;
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before)
      << "a null trace must cost one branch, not an allocation";
  EXPECT_TRUE(ids_stayed_null);
}

TEST(QueryTraceTest, ChromeTraceJsonCarriesSpans) {
  QueryTrace trace("q");
  const uint32_t root = trace.AddCompleteSpan("discover",
                                              QueryTrace::kNoParent, 0, 90);
  trace.AddCompleteSpan("fetch_shard", root, 5, 40, /*tid=*/2);
  const std::string json = trace.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"discover\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fetch_shard\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
}

TEST(QueryTraceTest, JsonLineEmbedsExtraFieldsAndEscapes) {
  QueryTrace trace("q");
  trace.AddCompleteSpan("a\"b", QueryTrace::kNoParent, 0, 10);
  const std::string line = trace.ToJsonLine("\"tenant\":\"t\\\"x\",");
  EXPECT_NE(line.find("\"tenant\":\"t\\\"x\""), std::string::npos);
  EXPECT_NE(line.find("\"name\":\"a\\\"b\""), std::string::npos);
  EXPECT_NE(line.find("\"parent\":-1"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "one line per record";
}

// ---- end-to-end: a traced Session::Discover ---------------------------

Corpus MakeLake() {
  Corpus corpus;
  Table t1("people_de");
  t1.AddColumn("Vorname");
  t1.AddColumn("Nachname");
  t1.AddColumn("Land");
  (void)t1.AppendRow({"Helmut", "Newton", "Germany"});
  (void)t1.AppendRow({"Muhammad", "Lee", "US"});
  (void)t1.AppendRow({"Ansel", "Adams", "UK"});
  corpus.AddTable(std::move(t1));
  Table t2("partial_match");
  t2.AddColumn("first");
  t2.AddColumn("last");
  (void)t2.AppendRow({"Muhammad", "Lee"});
  (void)t2.AppendRow({"Grace", "Hopper"});
  corpus.AddTable(std::move(t2));
  return corpus;
}

Table MakeQuery() {
  Table query("q");
  query.AddColumn("first");
  query.AddColumn("last");
  (void)query.AppendRow({"Muhammad", "Lee"});
  (void)query.AppendRow({"Helmut", "Newton"});
  return query;
}

TEST(TracedDiscoverTest, SpanTreeCoversEveryPipelinePhase) {
  SessionOptions options;
  options.corpus = MakeLake();
  options.build_index = true;
  options.cache_bytes = 1 << 20;
  auto session = Session::Open(std::move(options));
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  const Table query = MakeQuery();
  QueryTrace trace("search");
  QuerySpec spec;
  spec.table = &query;
  spec.key_columns = {0, 1};
  spec.options.k = 5;
  spec.trace = &trace;
  auto result = session->Discover(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->top_k.empty());

  const std::vector<TraceSpan> spans = trace.Spans();
  std::set<std::string> names;
  for (const TraceSpan& span : spans) names.insert(span.name);
  for (const char* phase :
       {"discover", "validate", "readiness_wait", "cache_lookup", "execute",
        "prepare", "fetch", "fetch_shard", "evaluate", "merge",
        "materialize", "row_loop", "cache_insert"}) {
    EXPECT_TRUE(names.count(phase)) << "missing phase span: " << phase;
  }

  // Structural invariants: every parent id is a valid earlier span, every
  // span nests inside its parent on the shared steady clock, and every
  // span except the root has a parent (one tree, no orphans).
  std::map<uint32_t, const TraceSpan*> by_id;
  for (const TraceSpan& span : spans) by_id[span.id] = &span;
  size_t roots = 0;
  for (const TraceSpan& span : spans) {
    if (span.parent == QueryTrace::kNoParent) {
      ++roots;
      continue;
    }
    ASSERT_TRUE(by_id.count(span.parent)) << span.name;
    const TraceSpan& parent = *by_id[span.parent];
    EXPECT_LT(parent.id, span.id) << "parents begin before children";
    EXPECT_GE(span.start_us, parent.start_us) << span.name;
    EXPECT_LE(span.start_us + span.duration_us,
              parent.start_us + parent.duration_us)
        << span.name << " escapes " << parent.name;
  }
  EXPECT_EQ(roots, 1u) << "a direct Discover call forms one tree";

  // The root's direct children account for (at most) its duration: phases
  // are sequential on the main line.
  const TraceSpan* discover = by_id.begin()->second;
  ASSERT_EQ(discover->name, "discover");
  uint64_t children_us = 0;
  for (const TraceSpan& span : spans) {
    if (span.parent == discover->id) children_us += span.duration_us;
  }
  EXPECT_LE(children_us, discover->duration_us);
}

TEST(TracedDiscoverTest, CacheHitTraceSkipsExecution) {
  SessionOptions options;
  options.corpus = MakeLake();
  options.build_index = true;
  options.cache_bytes = 1 << 20;
  auto session = Session::Open(std::move(options));
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  const Table query = MakeQuery();
  QuerySpec spec;
  spec.table = &query;
  spec.key_columns = {0, 1};
  spec.options.k = 5;
  ASSERT_TRUE(session->Discover(spec).ok());  // warm the cache, untraced

  QueryTrace trace;
  spec.trace = &trace;
  auto result = session->Discover(spec);
  ASSERT_TRUE(result.ok());
  std::set<std::string> names;
  for (const TraceSpan& span : trace.Spans()) names.insert(span.name);
  EXPECT_TRUE(names.count("cache_lookup"));
  EXPECT_FALSE(names.count("execute")) << "a hit must not run the executor";
  EXPECT_FALSE(names.count("cache_insert"));
}

// ---- BatchStats percentiles via LatencyHistogram ----------------------

TEST(BatchStatsTest, HistogramPercentilesTrackSortedReference) {
  // AggregateBatchStats now routes latency percentiles through a
  // LatencyHistogram over integer microseconds; against the sorted-vector
  // reference that allows the histogram's bounded over-report (<= 1/16
  // relative) plus the sub-microsecond truncation.
  std::vector<DiscoveryResult> results(257);
  std::vector<double> sorted;
  uint64_t state = 12345;
  for (DiscoveryResult& r : results) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double seconds = static_cast<double>(state % 2000000) / 1e6;
    r.stats.runtime_seconds = seconds;
    sorted.push_back(static_cast<double>(
                         static_cast<uint64_t>(seconds * 1e6)) /
                     1e6);
  }
  std::sort(sorted.begin(), sorted.end());
  const BatchStats stats = AggregateBatchStats(results, 1.0, 1);
  const struct {
    double p;
    double got;
  } checks[] = {{0.50, stats.latency_p50_s},
                {0.90, stats.latency_p90_s},
                {0.99, stats.latency_p99_s}};
  for (const auto& check : checks) {
    const double reference = PercentileSorted(sorted, check.p);
    EXPECT_GE(check.got, reference - 2e-6) << "p=" << check.p;
    EXPECT_LE(check.got, reference + reference / 16.0 + 2e-6)
        << "p=" << check.p;
  }
  EXPECT_DOUBLE_EQ(stats.latency_max_s, sorted.back());
}

}  // namespace
}  // namespace mate
