#include "util/coding.h"

#include <gtest/gtest.h>

#include <limits>

namespace mate {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed32(&buf, std::numeric_limits<uint32_t>::max());
  EXPECT_EQ(buf.size(), 12u);
  std::string_view cursor = buf;
  uint32_t v = 1;
  ASSERT_TRUE(GetFixed32(&cursor, &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(GetFixed32(&cursor, &v));
  EXPECT_EQ(v, 0xDEADBEEFu);
  ASSERT_TRUE(GetFixed32(&cursor, &v));
  EXPECT_EQ(v, std::numeric_limits<uint32_t>::max());
  EXPECT_TRUE(cursor.empty());
}

TEST(CodingTest, Fixed32IsLittleEndian) {
  std::string buf;
  PutFixed32(&buf, 0x01020304u);
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(buf[3]), 0x01);
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789ABCDEFULL);
  std::string_view cursor = buf;
  uint64_t v = 0;
  ASSERT_TRUE(GetFixed64(&cursor, &v));
  EXPECT_EQ(v, 0x0123456789ABCDEFULL);
}

TEST(CodingTest, VarintSmallValuesAreOneByte) {
  for (uint64_t v : {0ULL, 1ULL, 127ULL}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(buf.size(), 1u) << v;
    EXPECT_EQ(VarintLength(v), 1u);
  }
}

TEST(CodingTest, VarintBoundaries) {
  const uint64_t cases[] = {127,
                            128,
                            16383,
                            16384,
                            (uint64_t{1} << 32) - 1,
                            uint64_t{1} << 32,
                            std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : cases) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(buf.size(), VarintLength(v)) << v;
    std::string_view cursor = buf;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(&cursor, &decoded)) << v;
    EXPECT_EQ(decoded, v);
    EXPECT_TRUE(cursor.empty());
  }
}

TEST(CodingTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, uint64_t{1} << 40);
  std::string_view cursor = buf;
  uint32_t v = 0;
  EXPECT_FALSE(GetVarint32(&cursor, &v));
}

TEST(CodingTest, VarintRejectsTruncation) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  std::string_view cursor = std::string_view(buf).substr(0, 2);
  uint64_t v = 0;
  EXPECT_FALSE(GetVarint64(&cursor, &v));
}

TEST(CodingTest, GetFixedRejectsShortInput) {
  std::string buf = "abc";
  std::string_view cursor = buf;
  uint32_t v32 = 0;
  EXPECT_FALSE(GetFixed32(&cursor, &v32));
  uint64_t v64 = 0;
  EXPECT_FALSE(GetFixed64(&cursor, &v64));
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  std::string_view cursor = buf;
  std::string_view v;
  ASSERT_TRUE(GetLengthPrefixed(&cursor, &v));
  EXPECT_EQ(v, "");
  ASSERT_TRUE(GetLengthPrefixed(&cursor, &v));
  EXPECT_EQ(v, "hello");
  ASSERT_TRUE(GetLengthPrefixed(&cursor, &v));
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_TRUE(cursor.empty());
}

TEST(CodingTest, LengthPrefixedRejectsShortPayload) {
  std::string buf;
  PutVarint64(&buf, 100);  // claims 100 bytes
  buf += "short";
  std::string_view cursor = buf;
  std::string_view v;
  EXPECT_FALSE(GetLengthPrefixed(&cursor, &v));
}

TEST(CodingTest, MixedStreamRoundTrip) {
  std::string buf;
  PutVarint64(&buf, 42);
  PutLengthPrefixed(&buf, "value");
  PutFixed64(&buf, 7);
  std::string_view cursor = buf;
  uint64_t a = 0, c = 0;
  std::string_view b;
  ASSERT_TRUE(GetVarint64(&cursor, &a));
  ASSERT_TRUE(GetLengthPrefixed(&cursor, &b));
  ASSERT_TRUE(GetFixed64(&cursor, &c));
  EXPECT_EQ(a, 42u);
  EXPECT_EQ(b, "value");
  EXPECT_EQ(c, 7u);
}

}  // namespace
}  // namespace mate
