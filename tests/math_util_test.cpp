#include "util/math_util.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mate {
namespace {

TEST(MathUtilTest, LogBinomialSmallValues) {
  EXPECT_DOUBLE_EQ(LogBinomial(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(LogBinomial(5, 5), 0.0);
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-9);
  EXPECT_NEAR(LogBinomial(10, 3), std::log(120.0), 1e-9);
  EXPECT_EQ(LogBinomial(3, 4), -std::numeric_limits<double>::infinity());
}

TEST(MathUtilTest, OptimalOnesMatchesPaperExample) {
  // §5.3.1: 128-bit hash, 700M unique values -> alpha = 6.
  EXPECT_EQ(OptimalOnesCount(128, 700'000'000ULL), 6);
}

TEST(MathUtilTest, OptimalOnesGrowsWithUniques) {
  // C(128,2)=8128, C(128,3)=341376, C(128,4)=10.7M.
  EXPECT_EQ(OptimalOnesCount(128, 8000), 2);
  EXPECT_EQ(OptimalOnesCount(128, 10000), 3);
  EXPECT_EQ(OptimalOnesCount(128, 400000), 4);
  EXPECT_LE(OptimalOnesCount(128, 1), 2);
}

TEST(MathUtilTest, OptimalOnesShrinksWithHashSize) {
  uint64_t uniques = 700'000'000ULL;
  EXPECT_GE(OptimalOnesCount(128, uniques), OptimalOnesCount(256, uniques));
  EXPECT_GE(OptimalOnesCount(256, uniques), OptimalOnesCount(512, uniques));
}

TEST(MathUtilTest, XashBetaMatchesPaper) {
  // §5.3.2-§5.3.4: 128 -> beta 3 (length 17), 512 -> beta 13 (length 31).
  EXPECT_EQ(XashBeta(128), 3u);
  EXPECT_EQ(128 - 37 * XashBeta(128), 17u);
  EXPECT_EQ(XashBeta(256), 6u);
  EXPECT_EQ(256 - 37 * XashBeta(256), 34u);
  EXPECT_EQ(XashBeta(512), 13u);
  EXPECT_EQ(512 - 37 * XashBeta(512), 31u);
}

TEST(MathUtilTest, XashBetaStrictInequality) {
  // Equation 6 is strict: 37*beta < |a|, so 37*3=111 < 128 but for |a|=111
  // beta must drop to 2.
  EXPECT_EQ(XashBeta(111), 2u);
  EXPECT_EQ(XashBeta(112), 3u);
  EXPECT_EQ(XashBeta(38), 1u);
  EXPECT_EQ(XashBeta(37), 1u);  // degenerate floor
}

TEST(MathUtilTest, PermutationCount) {
  // Equation 3: P(n, k) = n!/(n-k)!.
  EXPECT_EQ(PermutationCount(5, 0), 1u);
  EXPECT_EQ(PermutationCount(5, 1), 5u);
  EXPECT_EQ(PermutationCount(5, 2), 20u);
  EXPECT_EQ(PermutationCount(5, 5), 120u);
  EXPECT_EQ(PermutationCount(3, 4), 0u);
  EXPECT_EQ(PermutationCount(33, 10), 33ULL * 32 * 31 * 30 * 29 * 28 * 27 *
                                           26 * 25 * 24);
}

TEST(MathUtilTest, PermutationCountSaturates) {
  EXPECT_EQ(PermutationCount(1000, 50),
            std::numeric_limits<uint64_t>::max());
}

}  // namespace
}  // namespace mate
