#include "util/math_util.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace mate {
namespace {

TEST(MathUtilTest, LogBinomialSmallValues) {
  EXPECT_DOUBLE_EQ(LogBinomial(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(LogBinomial(5, 5), 0.0);
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-9);
  EXPECT_NEAR(LogBinomial(10, 3), std::log(120.0), 1e-9);
  EXPECT_EQ(LogBinomial(3, 4), -std::numeric_limits<double>::infinity());
}

TEST(MathUtilTest, OptimalOnesMatchesPaperExample) {
  // §5.3.1: 128-bit hash, 700M unique values -> alpha = 6.
  EXPECT_EQ(OptimalOnesCount(128, 700'000'000ULL), 6);
}

TEST(MathUtilTest, OptimalOnesGrowsWithUniques) {
  // C(128,2)=8128, C(128,3)=341376, C(128,4)=10.7M.
  EXPECT_EQ(OptimalOnesCount(128, 8000), 2);
  EXPECT_EQ(OptimalOnesCount(128, 10000), 3);
  EXPECT_EQ(OptimalOnesCount(128, 400000), 4);
  EXPECT_LE(OptimalOnesCount(128, 1), 2);
}

TEST(MathUtilTest, OptimalOnesShrinksWithHashSize) {
  uint64_t uniques = 700'000'000ULL;
  EXPECT_GE(OptimalOnesCount(128, uniques), OptimalOnesCount(256, uniques));
  EXPECT_GE(OptimalOnesCount(256, uniques), OptimalOnesCount(512, uniques));
}

TEST(MathUtilTest, XashBetaMatchesPaper) {
  // §5.3.2-§5.3.4: 128 -> beta 3 (length 17), 512 -> beta 13 (length 31).
  EXPECT_EQ(XashBeta(128), 3u);
  EXPECT_EQ(128 - 37 * XashBeta(128), 17u);
  EXPECT_EQ(XashBeta(256), 6u);
  EXPECT_EQ(256 - 37 * XashBeta(256), 34u);
  EXPECT_EQ(XashBeta(512), 13u);
  EXPECT_EQ(512 - 37 * XashBeta(512), 31u);
}

TEST(MathUtilTest, XashBetaStrictInequality) {
  // Equation 6 is strict: 37*beta < |a|, so 37*3=111 < 128 but for |a|=111
  // beta must drop to 2.
  EXPECT_EQ(XashBeta(111), 2u);
  EXPECT_EQ(XashBeta(112), 3u);
  EXPECT_EQ(XashBeta(38), 1u);
  EXPECT_EQ(XashBeta(37), 1u);  // degenerate floor
}

TEST(MathUtilTest, PermutationCount) {
  // Equation 3: P(n, k) = n!/(n-k)!.
  EXPECT_EQ(PermutationCount(5, 0), 1u);
  EXPECT_EQ(PermutationCount(5, 1), 5u);
  EXPECT_EQ(PermutationCount(5, 2), 20u);
  EXPECT_EQ(PermutationCount(5, 5), 120u);
  EXPECT_EQ(PermutationCount(3, 4), 0u);
  EXPECT_EQ(PermutationCount(33, 10), 33ULL * 32 * 31 * 30 * 29 * 28 * 27 *
                                           26 * 25 * 24);
}

TEST(MathUtilTest, PermutationCountSaturates) {
  EXPECT_EQ(PermutationCount(1000, 50),
            std::numeric_limits<uint64_t>::max());
}

// ---- PercentileSorted: the tiny-batch edges are part of the contract ----

TEST(PercentileSortedTest, EmptySampleIsZero) {
  EXPECT_DOUBLE_EQ(PercentileSorted({}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(PercentileSorted({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(PercentileSorted({}, 0.99), 0.0);
}

TEST(PercentileSortedTest, SingleSampleForEveryP) {
  const std::vector<double> one = {3.5};
  for (double p : {0.0, 0.01, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(PercentileSorted(one, p), 3.5) << p;
  }
}

TEST(PercentileSortedTest, TwoSamplesSplitAtMedian) {
  const std::vector<double> two = {1.0, 9.0};
  EXPECT_DOUBLE_EQ(PercentileSorted(two, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(two, 0.5), 1.0);   // ceil(1.0) = rank 1
  EXPECT_DOUBLE_EQ(PercentileSorted(two, 0.51), 9.0);  // ceil(1.02) = rank 2
  EXPECT_DOUBLE_EQ(PercentileSorted(two, 0.9), 9.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(two, 0.99), 9.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(two, 1.0), 9.0);
}

TEST(PercentileSortedTest, ReturnsActualSamplesNeverInterpolates) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0, 5.0};
  for (double p : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double v = PercentileSorted(sorted, p);
    EXPECT_NE(std::find(sorted.begin(), sorted.end(), v), sorted.end())
        << "p=" << p << " produced non-sample value " << v;
  }
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 0.9), 5.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 0.8), 4.0);
}

TEST(PercentileSortedTest, ClampsPOutsideUnitInterval) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 1.5), 3.0);
}

TEST(PercentileSortedTest, MonotoneInP) {
  const std::vector<double> sorted = {0.5, 1.0, 1.5, 2.0, 8.0, 9.0, 10.0};
  double prev = PercentileSorted(sorted, 0.0);
  for (double p = 0.05; p <= 1.0; p += 0.05) {
    const double v = PercentileSorted(sorted, p);
    EXPECT_GE(v, prev) << p;
    prev = v;
  }
}

}  // namespace
}  // namespace mate
