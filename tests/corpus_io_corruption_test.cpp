// Corpus-loader hardening, mirroring the index suite
// (index_io_corruption_test): a malformed or truncated corpus image must
// fail with a kCorruption error naming the section and byte offset — at
// open when the damage is in the header/directory/region extent, or from
// the sticky TableStore status when it is confined to one table's cell
// blob — and must never crash, drive a huge allocation, or yield a
// silently empty table.

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "storage/corpus.h"
#include "storage/corpus_io.h"
#include "storage/table_store.h"
#include "util/coding.h"

namespace mate {
namespace {

Corpus MakeCorpus() {
  Corpus corpus;
  Table t1("sensors");
  t1.AddColumn("time");
  t1.AddColumn("city");
  (void)t1.AppendRow({"2024-01-01", "berlin"});
  (void)t1.AppendRow({"2024-01-02", "hannover"});
  (void)t1.AppendRow({"2024-01-03", "munich"});
  EXPECT_TRUE(t1.DeleteRow(1).ok());
  corpus.AddTable(std::move(t1));

  Table t2("empty table");
  t2.AddColumn("only column, with comma \"and quotes\"");
  corpus.AddTable(std::move(t2));

  Table t3("wide");
  for (int c = 0; c < 5; ++c) t3.AddColumn("c" + std::to_string(c));
  for (int r = 0; r < 12; ++r) {
    std::vector<std::string> cells;
    for (int c = 0; c < 5; ++c) {
      cells.push_back("v" + std::to_string(r) + "_" + std::to_string(c));
    }
    (void)t3.AppendRow(std::move(cells));
  }
  corpus.AddTable(std::move(t3));
  return corpus;
}

std::string SerializeV2(const Corpus& corpus) {
  std::string bytes;
  SerializeCorpus(corpus, corpus.ComputeStats(), &bytes);
  return bytes;
}

std::string WriteTemp(const std::string& tag, std::string_view bytes) {
  const std::string path =
      testing::TempDir() + "/mate_corpus_corruption_" + tag + ".bin";
  EXPECT_TRUE(WriteFileAtomic(path, bytes).ok());
  return path;
}

// The cell region is the image's suffix; its extent is the sum of the
// per-table blob sizes (the directory's cell_bytes values).
size_t CellRegionStart(const Corpus& corpus, const std::string& bytes) {
  uint64_t region = 0;
  for (TableId t = 0; t < corpus.NumTables(); ++t) {
    region += TableCellBytes(corpus.table(t));
  }
  return bytes.size() - static_cast<size_t>(region);
}

TEST(CorpusIoCorruptionTest, BadMagicNamesTheCorpus) {
  auto loaded = DeserializeCorpus("NOTMAGIC-and-more-bytes-to-parse");
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  EXPECT_NE(loaded.status().message().find("corpus"), std::string::npos);
}

TEST(CorpusIoCorruptionTest, UnsupportedVersionNamesTheVersion) {
  std::string bytes = SerializeV2(MakeCorpus());
  bytes[8] = '\x09';  // version fixed32 little-endian low byte
  auto loaded = DeserializeCorpus(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  EXPECT_NE(loaded.status().message().find("unsupported version 9"),
            std::string::npos);
}

TEST(CorpusIoCorruptionTest, TruncatedStatsNamesSectionAndOffset) {
  std::string bytes = SerializeV2(MakeCorpus());
  auto loaded = DeserializeCorpus(bytes.substr(0, 14));  // mid-stats
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  EXPECT_NE(loaded.status().message().find("stats section"),
            std::string::npos);
  EXPECT_NE(loaded.status().message().find("byte offset"), std::string::npos);
}

TEST(CorpusIoCorruptionTest, TruncatedDirectoryNamesSectionAndOffset) {
  Corpus corpus = MakeCorpus();
  std::string bytes = SerializeV2(corpus);
  const size_t region_start = CellRegionStart(corpus, bytes);
  // Any cut between the stats and the region prefix lands in the table
  // directory (or its region-size header).
  auto loaded =
      DeserializeCorpus(bytes.substr(0, region_start - 12));
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  const std::string& message = loaded.status().message();
  EXPECT_TRUE(message.find("table directory section") != std::string::npos ||
              message.find("cell region section") != std::string::npos)
      << message;
  EXPECT_NE(message.find("byte offset"), std::string::npos);
}

TEST(CorpusIoCorruptionTest, ShortCellRegionFailsAtOpenNotMidQuery) {
  const std::string bytes = SerializeV2(MakeCorpus());
  // Cut inside the cell region: the size prefix no longer matches, so even
  // the *lazy* open — which parses no cells — must fail up front.
  const std::string cut = bytes.substr(0, bytes.size() - 5);
  auto eager = DeserializeCorpus(cut);
  ASSERT_FALSE(eager.ok());
  EXPECT_TRUE(eager.status().IsCorruption());
  EXPECT_NE(eager.status().message().find("cell region"), std::string::npos);

  const std::string path = WriteTemp("short_region", cut);
  auto lazy = OpenCorpusLazy(path);
  ASSERT_FALSE(lazy.ok());
  EXPECT_TRUE(lazy.status().IsCorruption());
  EXPECT_NE(lazy.status().message().find("cell region"), std::string::npos);
  EXPECT_NE(lazy.status().message().find("byte offset"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CorpusIoCorruptionTest, TrailingGarbageIsRejected) {
  std::string bytes = SerializeV2(MakeCorpus());
  bytes += "junk";
  auto loaded = DeserializeCorpus(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  EXPECT_NE(loaded.status().message().find("trailing"), std::string::npos);
}

TEST(CorpusIoCorruptionTest, DirectoryRegionSizeSkewIsRejected) {
  Corpus corpus = MakeCorpus();
  std::string bytes = SerializeV2(corpus);
  const size_t region_start = CellRegionStart(corpus, bytes);
  // Grow the region by 3 bytes without touching the directory: the fixed64
  // prefix and the directory's per-table sums now disagree.
  std::string grown = bytes.substr(0, region_start - 8);
  PutFixed64(&grown, bytes.size() - region_start + 3);
  grown += bytes.substr(region_start);
  grown += "xyz";
  auto loaded = DeserializeCorpus(grown);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  EXPECT_NE(loaded.status().message().find("size skew"), std::string::npos);
}

// A flipped byte inside one table's cell blob: the lazy open succeeds (the
// header is intact), and the damage surfaces at that table's
// materialization as a sticky, offset-bearing status — with the table
// coming back as a shape-complete stub, never out-of-bounds, and the
// remaining tables unharmed.
TEST(CorpusIoCorruptionTest, CellBlobCorruptionIsStickyAndShapeSafe) {
  Corpus corpus = MakeCorpus();
  const std::string bytes = SerializeV2(corpus);
  const size_t region_start = CellRegionStart(corpus, bytes);
  bool found_parse_failure = false;
  for (size_t offset = region_start; offset < bytes.size(); ++offset) {
    std::string mutated = bytes;
    mutated[offset] = static_cast<char>(mutated[offset] ^ 0x80);
    const std::string path = WriteTemp("flip", mutated);
    auto lazy = OpenCorpusLazy(path);
    std::remove(path.c_str());
    ASSERT_TRUE(lazy.ok()) << "header must be intact: "
                           << lazy.status().ToString();
    const Status all = lazy->MaterializeAll();
    if (all.ok()) continue;  // content flip: parses, just different cells
    found_parse_failure = true;
    EXPECT_TRUE(all.IsCorruption());
    EXPECT_NE(all.message().find("cell region"), std::string::npos)
        << all.message();
    EXPECT_NE(all.message().find("byte offset"), std::string::npos);
    EXPECT_EQ(lazy->load_status().message(), all.message());
    // Shape-complete stubs: every table still has its declared geometry.
    for (TableId t = 0; t < lazy->NumTables(); ++t) {
      EXPECT_EQ(lazy->table(t).NumRows(), corpus.table(t).NumRows());
      EXPECT_EQ(lazy->table(t).NumColumns(), corpus.table(t).NumColumns());
      EXPECT_FALSE(lazy->EnsureTable(t).ok());  // sticky for every caller
    }
  }
  EXPECT_TRUE(found_parse_failure)
      << "no flip produced a parse failure; the fuzz lost its teeth";
}

// Truncation fuzz over the whole image at 48 deterministic offsets: every
// cut either fails cleanly at (lazy or eager) open with a section+offset
// message, or — when it only sheared future-proof slack — round-trips
// equal. Never a crash, never a silently short corpus.
TEST(CorpusIoCorruptionTest, TruncationFuzzFailsCleanlyEverywhere) {
  Corpus corpus = MakeCorpus();
  const std::string bytes = SerializeV2(corpus);
  for (size_t i = 0; i < 48; ++i) {
    const size_t cut = (bytes.size() - 1) * (i + 1) / 48;
    SCOPED_TRACE("cut=" + std::to_string(cut));
    const std::string_view prefix = std::string_view(bytes).substr(0, cut);
    auto eager = DeserializeCorpus(prefix);
    if (eager.ok()) {
      EXPECT_TRUE(CorporaEqual(corpus, *eager));
    } else {
      EXPECT_TRUE(eager.status().IsCorruption());
      EXPECT_NE(eager.status().message().find("byte offset"),
                std::string::npos)
          << eager.status().message();
    }
    const std::string path = WriteTemp("trunc", prefix);
    auto lazy = OpenCorpusLazy(path);
    std::remove(path.c_str());
    if (!lazy.ok()) {
      EXPECT_TRUE(lazy.status().IsCorruption());
      continue;
    }
    // A cut that survives the header bounds checks must still either
    // materialize fully or latch a clean error.
    const Status all = lazy->MaterializeAll();
    if (all.ok()) EXPECT_TRUE(CorporaEqual(corpus, *lazy));
  }
}

TEST(CorpusIoCorruptionTest, HugeDeclaredTableCountFailsFast) {
  std::string bytes;
  bytes.append("MATECORP", 8);
  PutFixed32(&bytes, 2);
  bytes.push_back('\x00');
  AppendCorpusStats(&bytes, CorpusStats{});
  PutVarint64(&bytes, uint64_t{1} << 60);  // would reserve petabytes
  auto loaded = DeserializeCorpus(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  EXPECT_NE(loaded.status().message().find("bad table count"),
            std::string::npos);
}

TEST(CorpusIoCorruptionTest, HugeDeclaredColumnCountFailsFast) {
  Corpus corpus = MakeCorpus();
  std::string bytes;
  bytes.append("MATECORP", 8);
  PutFixed32(&bytes, 2);
  bytes.push_back('\x00');
  AppendCorpusStats(&bytes, CorpusStats{});
  PutVarint64(&bytes, 1);
  PutLengthPrefixed(&bytes, "t");
  PutVarint64(&bytes, uint64_t{1} << 59);
  auto loaded = DeserializeCorpus(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  EXPECT_NE(loaded.status().message().find("bad column count"),
            std::string::npos);
}

TEST(CorpusIoCorruptionTest, WrappingRowCountCannotFakeAnEmptyBitmap) {
  // num_rows = 2^64 - 1 makes (num_rows + 7) / 8 wrap to 0, so without a
  // bound a zero-length bitmap would "cover" every row and the popcount
  // would loop ~2^64 times off the end of an empty view.
  std::string bytes;
  bytes.append("MATECORP", 8);
  PutFixed32(&bytes, 2);
  bytes.push_back('\x00');
  AppendCorpusStats(&bytes, CorpusStats{});
  PutVarint64(&bytes, 1);
  PutLengthPrefixed(&bytes, "t");
  PutVarint64(&bytes, 0);  // no columns
  PutVarint64(&bytes, std::numeric_limits<uint64_t>::max());  // num_rows
  PutLengthPrefixed(&bytes, "");  // empty bitmap: (2^64-1+7)/8 wraps to 0
  PutVarint64(&bytes, 0);         // cell_bytes
  PutFixed64(&bytes, 0);          // region total
  auto loaded = DeserializeCorpus(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  EXPECT_NE(loaded.status().message().find("bad row count"),
            std::string::npos);
}

TEST(CorpusIoCorruptionTest, WrappingCellSizesCannotPassTheSkewCheck) {
  // Two extents summing to the true region size mod 2^64: without the
  // per-entry bound + overflow-safe sum they would pass the skew check and
  // drive substr past the end of the image at materialization.
  std::string bytes;
  bytes.append("MATECORP", 8);
  PutFixed32(&bytes, 2);
  bytes.push_back('\x00');
  AppendCorpusStats(&bytes, CorpusStats{});
  PutVarint64(&bytes, 2);
  for (int t = 0; t < 2; ++t) {
    PutLengthPrefixed(&bytes, "t" + std::to_string(t));
    PutVarint64(&bytes, 0);          // no columns
    PutVarint64(&bytes, 0);          // no rows
    PutLengthPrefixed(&bytes, "");   // empty bitmap
    // cell_bytes: 2^63 each; sum wraps to 0 == declared region total.
    PutVarint64(&bytes, uint64_t{1} << 63);
  }
  PutFixed64(&bytes, 0);  // region total (matches the wrapped sum)
  auto loaded = DeserializeCorpus(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  EXPECT_NE(loaded.status().message().find("bad cell size"),
            std::string::npos);
}

TEST(CorpusIoCorruptionTest, ShapeLargerThanItsCellExtentIsRejected) {
  // 800 declared rows backed by a real 100-byte bitmap but a zero-byte
  // cell blob: every cell costs >= 1 byte, so this shape is impossible —
  // and without the bound, the shape stub built after the failed parse
  // would amplify a tiny file into an 800-row allocation.
  std::string bytes;
  bytes.append("MATECORP", 8);
  PutFixed32(&bytes, 2);
  bytes.push_back('\x00');
  AppendCorpusStats(&bytes, CorpusStats{});
  PutVarint64(&bytes, 1);
  PutLengthPrefixed(&bytes, "t");
  PutVarint64(&bytes, 1);
  PutLengthPrefixed(&bytes, "c0");
  PutVarint64(&bytes, 800);
  PutLengthPrefixed(&bytes, std::string(100, '\0'));  // bitmap for 800 rows
  PutVarint64(&bytes, 0);                             // cell_bytes
  PutFixed64(&bytes, 0);                              // region total
  auto loaded = DeserializeCorpus(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  EXPECT_NE(loaded.status().message().find("too small for the declared "
                                           "shape"),
            std::string::npos);
}

TEST(CorpusIoCorruptionTest, DeletedBitmapSizeSkewIsRejected) {
  Corpus corpus = MakeCorpus();
  std::string bytes = SerializeV2(corpus);
  // The first directory entry's bitmap is 1 byte for 3 rows; shrinking the
  // declared row count desynchronizes it.
  const std::string needle = "sensors";
  const size_t name_at = bytes.find(needle);
  ASSERT_NE(name_at, std::string::npos);
  // name, num_cols varint, 2 col-name lps, then rows varint (value 3).
  size_t pos = name_at + needle.size();
  ASSERT_EQ(bytes[pos], 2);  // num_cols varint
  pos += 1;
  for (int lp = 0; lp < 2; ++lp) {
    pos += 1 + static_cast<unsigned char>(bytes[pos]);
  }
  ASSERT_EQ(bytes[pos], 3);  // num_rows varint
  bytes[pos] = 9;
  auto loaded = DeserializeCorpus(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  EXPECT_NE(loaded.status().message().find("deleted bitmap"),
            std::string::npos);
}

// Walks the first directory entry ("sensors": 2 columns, 3 rows, all
// single-byte varints) to the position of its first per-column extent.
size_t SensorsPerColumnOffset(const std::string& bytes) {
  const std::string needle = "sensors";
  const size_t name_at = bytes.find(needle);
  EXPECT_NE(name_at, std::string::npos);
  size_t pos = name_at + needle.size();
  EXPECT_EQ(bytes[pos], 2);  // num_cols varint
  pos += 1;
  for (int lp = 0; lp < 2; ++lp) {  // column-name length prefixes
    pos += 1 + static_cast<unsigned char>(bytes[pos]);
  }
  EXPECT_EQ(bytes[pos], 3);  // num_rows varint
  pos += 1;
  pos += 1 + static_cast<unsigned char>(bytes[pos]);  // deleted bitmap
  pos += 1;  // cell_bytes varint (small enough for one byte)
  return pos;
}

TEST(CorpusIoCorruptionTest, PerColumnExtentPastTheBlobIsRejected) {
  Corpus corpus = MakeCorpus();
  std::string bytes = SerializeV2(corpus);
  const size_t pos = SensorsPerColumnOffset(bytes);
  ASSERT_EQ(static_cast<uint64_t>(bytes[pos]),
            TableColumnCellBytes(corpus.table(0), 0));
  // One column claiming more bytes than the whole blob holds: must fail at
  // open, in the directory, not as a wild sub-blob parse later.
  bytes[pos] = '\x7f';
  auto loaded = DeserializeCorpus(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  const std::string& message = loaded.status().message();
  EXPECT_NE(message.find("bad column cell size for column 0 of table 0"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("table directory section"), std::string::npos);
  EXPECT_NE(message.find("byte offset"), std::string::npos);
}

TEST(CorpusIoCorruptionTest, PerColumnExtentSumSkewIsRejected) {
  Corpus corpus = MakeCorpus();
  std::string bytes = SerializeV2(corpus);
  const size_t pos = SensorsPerColumnOffset(bytes);
  // Each extent stays in bounds but the pair no longer tiles the blob.
  bytes[pos] = static_cast<char>(bytes[pos] - 1);
  auto loaded = DeserializeCorpus(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  const std::string& message = loaded.status().message();
  EXPECT_NE(message.find("column size skew for table 0"), std::string::npos)
      << message;
  EXPECT_NE(message.find("columns declare"), std::string::npos);
  EXPECT_NE(message.find("byte offset"), std::string::npos);

  // The lazy opener runs the same header parse: same failure, at open.
  const std::string path = WriteTemp("colskew", bytes);
  auto lazy = OpenCorpusLazy(path);
  std::remove(path.c_str());
  ASSERT_FALSE(lazy.ok());
  EXPECT_TRUE(lazy.status().IsCorruption());
  EXPECT_NE(lazy.status().message().find("column size skew"),
            std::string::npos);
}

TEST(CorpusIoCorruptionTest, CutInsideThePerColumnExtentsNamesTheSection) {
  // The truncation fuzz above sweeps the whole image; this pins the case the
  // v3 format added — a cut landing exactly among the per-column varints.
  Corpus corpus = MakeCorpus();
  const std::string bytes = SerializeV2(corpus);
  const size_t pos = SensorsPerColumnOffset(bytes);
  auto loaded = DeserializeCorpus(std::string_view(bytes).substr(0, pos + 1));
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  const std::string& message = loaded.status().message();
  EXPECT_NE(message.find("table directory section"), std::string::npos)
      << message;
  EXPECT_NE(message.find("byte offset"), std::string::npos);
}

TEST(CorpusIoCorruptionTest, V1ImagesStillLoadEverywhere) {
  Corpus corpus = MakeCorpus();
  std::string v1;
  SerializeCorpusV1(corpus, &v1);
  auto eager = DeserializeCorpus(v1);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  EXPECT_TRUE(CorporaEqual(corpus, *eager));

  const std::string path = WriteTemp("v1", v1);
  auto lazy = OpenCorpusLazy(path);
  ASSERT_TRUE(lazy.ok()) << lazy.status().ToString();
  // The legacy path has nothing to defer: fully resident on return.
  EXPECT_TRUE(lazy->fully_resident());
  EXPECT_TRUE(CorporaEqual(corpus, *lazy));
  std::remove(path.c_str());
}

TEST(CorpusIoCorruptionTest, V1TruncationStillFailsCleanly) {
  Corpus corpus = MakeCorpus();
  std::string v1;
  SerializeCorpusV1(corpus, &v1);
  for (size_t cut : {v1.size() / 4, v1.size() / 2, v1.size() - 1}) {
    auto loaded = DeserializeCorpus(std::string_view(v1).substr(0, cut));
    ASSERT_FALSE(loaded.ok()) << "cut=" << cut;
    EXPECT_TRUE(loaded.status().IsCorruption());
  }
}

}  // namespace
}  // namespace mate
