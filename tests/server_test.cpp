// End-to-end tests for the mate_server serving front-end: ephemeral-port
// lifecycle, wire round-trips bit-identical to in-process discovery,
// concurrent multi-tenant clients, malformed-frame handling (typed errors,
// never crashes), deterministic queue-full sheds via the dispatcher test
// hook, and graceful drain of admitted in-flight queries on Stop().

#include "server/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "server/client.h"
#include "server/protocol.h"
#include "util/coding.h"

namespace mate {
namespace {

// ---- fixtures (the Figure 1 lake, as in session_test) ----------------

Corpus MakeLake() {
  Corpus corpus;
  Table t1("people_de");
  t1.AddColumn("Vorname");
  t1.AddColumn("Nachname");
  t1.AddColumn("Land");
  (void)t1.AppendRow({"Helmut", "Newton", "Germany"});
  (void)t1.AppendRow({"Muhammad", "Lee", "US"});
  (void)t1.AppendRow({"Ansel", "Adams", "UK"});
  (void)t1.AppendRow({"Muhammad", "Lee", "Germany"});
  corpus.AddTable(std::move(t1));

  Table t2("partial_match");
  t2.AddColumn("first");
  t2.AddColumn("last");
  (void)t2.AppendRow({"Muhammad", "Lee"});
  (void)t2.AppendRow({"Grace", "Hopper"});
  corpus.AddTable(std::move(t2));
  return corpus;
}

Table MakeQuery() {
  Table query("q");
  query.AddColumn("first");
  query.AddColumn("last");
  query.AddColumn("country");
  (void)query.AppendRow({"Muhammad", "Lee", "US"});
  (void)query.AppendRow({"Helmut", "Newton", "Germany"});
  (void)query.AppendRow({"Ansel", "Adams", "UK"});
  return query;
}

Session OpenLakeSession(size_t cache_bytes = 1 << 20) {
  SessionOptions options;
  options.corpus = MakeLake();
  options.build_index = true;
  options.cache_bytes = cache_bytes;
  options.num_threads = 1;
  auto session = Session::Open(std::move(options));
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return std::move(*session);
}

/// Ground truth from a second, independent session over the same lake: the
/// server must serve results bit-identical to in-process discovery.
DiscoveryResult DirectDiscover(const Table& query,
                               const std::vector<ColumnId>& key, int k = 5) {
  Session session = OpenLakeSession(/*cache_bytes=*/0);
  QuerySpec spec;
  spec.table = &query;
  spec.key_columns = key;
  spec.options.k = k;
  auto result = session.Discover(spec);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

void ExpectServedMatches(const std::vector<ServedResult>& served,
                         const DiscoveryResult& expected) {
  ASSERT_EQ(served.size(), expected.top_k.size());
  for (size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i].table_id, expected.top_k[i].table_id) << "rank " << i;
    EXPECT_EQ(served[i].joinability, expected.top_k[i].joinability)
        << "rank " << i;
    EXPECT_EQ(served[i].mapping, expected.top_k[i].best_mapping)
        << "rank " << i;
    EXPECT_EQ(served[i].mapping_names.size(), served[i].mapping.size());
  }
}

/// A raw TCP connection for speaking deliberately broken protocol.
int ConnectRaw(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

// ---- lifecycle -------------------------------------------------------

TEST(ServerTest, StartsOnEphemeralPortAndStopsIdempotently) {
  Session session = OpenLakeSession();
  MateServer server(&session, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  EXPECT_NE(server.port(), 0);

  auto client = MateClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client->Ping().ok());

  server.Stop();
  server.Stop();  // idempotent
  // The destructor's drain is also a no-op after an explicit Stop().
}

// ---- round trips -----------------------------------------------------

TEST(ServerTest, QueryRoundTripIsBitIdenticalToDirectDiscover) {
  Session session = OpenLakeSession();
  MateServer server(&session, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  const Table query = MakeQuery();
  const DiscoveryResult expected = DirectDiscover(query, {0, 1});

  auto client = MateClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto response =
      client->Query(MakeQueryRequest(query, {0, 1}, /*k=*/5, "acme"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->status.ok()) << response->status.ToString();
  ExpectServedMatches(response->results, expected);
  // The lake's exact shape: people_de joins all 3 combos, partial_match 1.
  ASSERT_GE(response->results.size(), 2u);
  EXPECT_EQ(response->results[0].table_name, "people_de");
  EXPECT_EQ(response->results[0].joinability, 3);
  EXPECT_EQ(response->results[1].table_name, "partial_match");
  EXPECT_EQ(response->results[1].joinability, 1);
  EXPECT_EQ(response->results[0].mapping_names,
            (std::vector<std::string>{"Vorname", "Nachname"}));
  server.Stop();
}

TEST(ServerTest, ConcurrentMultiTenantClientsAreBitIdentical) {
  Session session = OpenLakeSession();
  ServerOptions options;
  options.tenant_cache_bytes = 1 << 18;
  MateServer server(&session, options);
  ASSERT_TRUE(server.Start().ok());

  const Table query = MakeQuery();
  const DiscoveryResult expected2 = DirectDiscover(query, {0, 1});
  const DiscoveryResult expected3 = DirectDiscover(query, {0, 1, 2});

  constexpr int kClients = 6;
  constexpr int kQueriesEach = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = MateClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      const std::string tenant = (c % 2 == 0) ? "acme" : "globex";
      for (int i = 0; i < kQueriesEach; ++i) {
        const bool wide = (c + i) % 2 == 0;
        const std::vector<ColumnId> key =
            wide ? std::vector<ColumnId>{0, 1, 2}
                 : std::vector<ColumnId>{0, 1};
        auto response =
            client->Query(MakeQueryRequest(query, key, /*k=*/5, tenant));
        if (!response.ok() || !response->status.ok()) {
          failures.fetch_add(1);
          continue;
        }
        ExpectServedMatches(response->results, wide ? expected3 : expected2);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  const ServerStatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.admitted, kClients * kQueriesEach);
  EXPECT_EQ(stats.completed, kClients * kQueriesEach);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.latency_count, kClients * kQueriesEach);
  ASSERT_EQ(stats.tenants.size(), 2u);  // acme + globex, sorted
  EXPECT_EQ(stats.tenants[0].tenant, "acme");
  EXPECT_EQ(stats.tenants[1].tenant, "globex");
  EXPECT_EQ(stats.tenants[0].requests + stats.tenants[1].requests,
            static_cast<uint64_t>(kClients * kQueriesEach));
  // Per-tenant cache partitions were budgeted on first contact and soak up
  // the repeats: 2 distinct fingerprints per tenant, the rest are hits.
  EXPECT_EQ(stats.tenants[0].cache_capacity_bytes, 1u << 18);
  EXPECT_EQ(stats.cache_misses, 4u);
  EXPECT_EQ(stats.cache_hits, kClients * kQueriesEach - 4u);
  server.Stop();
}

TEST(ServerTest, StatsVerbServesTheObservabilitySnapshot) {
  Session session = OpenLakeSession();
  MateServer server(&session, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  const Table query = MakeQuery();
  auto client = MateClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto r1 = client->Query(MakeQueryRequest(query, {0, 1}, 5, "acme"));
  ASSERT_TRUE(r1.ok());
  auto r2 = client->Query(MakeQueryRequest(query, {0, 1}, 5, "acme"));
  ASSERT_TRUE(r2.ok());

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->queue_capacity, ServerOptions{}.max_queue_depth);
  EXPECT_EQ(stats->admitted, 2u);
  EXPECT_EQ(stats->completed, 2u);
  EXPECT_EQ(stats->shed, 0u);
  EXPECT_FALSE(stats->draining);
  EXPECT_GE(stats->active_connections, 1u);
  EXPECT_EQ(stats->latency_count, 2u);
  EXPECT_GE(stats->latency_max_us, stats->latency_p50_us);
  EXPECT_GT(stats->total_query_seconds, 0.0);
  EXPECT_EQ(stats->num_tables, 2u);  // the lake
  EXPECT_EQ(stats->cache_hits, 1u);  // the repeat hit acme's partition
  // Steering is off by default: no decisions are ever counted.
  EXPECT_EQ(stats->steering_serial, 0u);
  EXPECT_EQ(stats->steering_partial, 0u);
  EXPECT_EQ(stats->steering_full, 0u);
  ASSERT_EQ(stats->tenants.size(), 1u);
  EXPECT_EQ(stats->tenants[0].tenant, "acme");
  EXPECT_EQ(stats->tenants[0].requests, 2u);
  EXPECT_EQ(stats->tenants[0].admitted, 2u);
  EXPECT_EQ(stats->tenants[0].cache_entries, 1u);
  server.Stop();
}

// ---- malformed input -------------------------------------------------

TEST(ServerTest, MalformedFramesGetTypedErrorsAndConnectionSurvives) {
  Session session = OpenLakeSession();
  MateServer server(&session, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  int fd = ConnectRaw(server.port());

  const auto expect_error_reply = [&](std::string_view payload) {
    ASSERT_TRUE(WriteFrame(fd, payload).ok());
    std::string response;
    ASSERT_TRUE(ReadFrame(fd, &response).ok());
    Status server_status;
    std::string_view body;
    ASSERT_TRUE(DecodeResponseStatus(response, &server_status, &body).ok());
    EXPECT_TRUE(server_status.IsInvalidArgument())
        << server_status.ToString();
  };

  expect_error_reply("");                  // empty payload: no verb byte
  expect_error_reply("\x7f");              // unknown verb
  expect_error_reply("\x01garbage-body");  // QUERY body that fails decode

  // A truncated-but-framed QUERY: valid tenant, then the body just ends.
  std::string truncated;
  truncated.push_back('\x01');
  PutLengthPrefixed(&truncated, "tenant");
  expect_error_reply(truncated);

  // The connection survived all four: a well-formed PING still round-trips.
  std::string ping;
  EncodePingRequest(&ping);
  ASSERT_TRUE(WriteFrame(fd, ping).ok());
  std::string response;
  ASSERT_TRUE(ReadFrame(fd, &response).ok());
  Status server_status;
  std::string_view body;
  ASSERT_TRUE(DecodeResponseStatus(response, &server_status, &body).ok());
  EXPECT_TRUE(server_status.ok());

  ::close(fd);
  server.Stop();
}

TEST(ServerTest, OversizedFrameIsRefusedAndStreamClosed) {
  Session session = OpenLakeSession();
  MateServer server(&session, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  int fd = ConnectRaw(server.port());

  // Declare a frame bigger than kMaxFrameBytes: the declared length cannot
  // be trusted, so the server answers once and closes the stream.
  std::string header;
  PutFixed32(&header, kMaxFrameBytes + 1);
  ASSERT_EQ(::send(fd, header.data(), header.size(), 0),
            static_cast<ssize_t>(header.size()));

  std::string response;
  ASSERT_TRUE(ReadFrame(fd, &response).ok());
  Status server_status;
  std::string_view body;
  ASSERT_TRUE(DecodeResponseStatus(response, &server_status, &body).ok());
  EXPECT_TRUE(server_status.IsInvalidArgument()) << server_status.ToString();

  // The server hung up: the next read hits EOF, not a frame.
  Status eof = ReadFrame(fd, &response);
  EXPECT_TRUE(eof.IsNotFound()) << eof.ToString();
  ::close(fd);
  server.Stop();
}

// ---- misbehaving clients --------------------------------------------

TEST(ServerTest, WriteFrameToHungUpPeerFailsTypedInsteadOfSigpipe) {
  // A peer that hung up must surface as an IOError from WriteFrame. With a
  // plain write(2) this raises SIGPIPE (default disposition: kill the
  // process — every tenant of a multi-tenant server); MSG_NOSIGNAL keeps
  // it a per-connection EPIPE. The closed socketpair end makes the very
  // first send fail, so this test dies without the fix.
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ::close(sv[1]);
  Status s = WriteFrame(sv[0], "response for a client that is gone");
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  ::close(sv[0]);
}

TEST(ServerTest, ClientDisconnectBeforeResponseDoesNotKillServer) {
  Session session = OpenLakeSession();
  ServerOptions options;
  options.dispatch_delay_for_test = std::chrono::milliseconds(50);
  MateServer server(&session, options);
  ASSERT_TRUE(server.Start().ok());

  const Table query = MakeQuery();
  std::string payload;
  EncodeQueryRequest(MakeQueryRequest(query, {0, 1}, 5, "t"), &payload);

  // Send a QUERY, then hard-close before the dispatch delay elapses.
  // SO_LINGER(0) turns the close into an RST, so the server's response
  // write hits a reset connection: it must fail with EPIPE, not raise
  // SIGPIPE and kill the whole multi-tenant process (and this test).
  int fd = ConnectRaw(server.port());
  ASSERT_TRUE(WriteFrame(fd, payload).ok());
  struct linger hard_close = {1, 0};
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_close,
                         sizeof(hard_close)),
            0);
  ::close(fd);

  // The admitted query still completes server-side; the failed response
  // write only ends that one connection.
  while (server.stats().completed < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The server survived: a fresh client still round-trips a full query.
  const DiscoveryResult expected = DirectDiscover(query, {0, 1});
  auto client = MateClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto response = client->Query(MakeQueryRequest(query, {0, 1}, 5, "t"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->status.ok()) << response->status.ToString();
  ExpectServedMatches(response->results, expected);
  server.Stop();
}

TEST(ServerTest, ConnectionChurnDrainsTheRegistry) {
  Session session = OpenLakeSession();
  MateServer server(&session, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  // Many short-lived connections: each must deregister itself on hangup —
  // a resident server must not accumulate dead thread handles or fd slots.
  for (int i = 0; i < 20; ++i) {
    auto client = MateClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    ASSERT_TRUE(client->Ping().ok());
  }

  // Deregistration is asynchronous (the reader thread sees EOF first).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.registered_connections_for_test() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.registered_connections_for_test(), 0u);
  EXPECT_EQ(server.stats().active_connections, 0u);
  server.Stop();
}

TEST(ServerTest, AcceptsBeyondConnectionLimitAreShedWithOverloaded) {
  Session session = OpenLakeSession();
  ServerOptions options;
  options.max_connections = 1;
  MateServer server(&session, options);
  ASSERT_TRUE(server.Start().ok());

  {
    auto first = MateClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    ASSERT_TRUE(first->Ping().ok());

    // With the slot taken, the next accept is shed: one typed kOverloaded
    // frame (unsolicited — read without sending), then the server hangs up.
    int fd = ConnectRaw(server.port());
    std::string response;
    ASSERT_TRUE(ReadFrame(fd, &response).ok());
    Status server_status;
    std::string_view body;
    ASSERT_TRUE(DecodeResponseStatus(response, &server_status, &body).ok());
    EXPECT_TRUE(server_status.IsOverloaded()) << server_status.ToString();
    EXPECT_TRUE(ReadFrame(fd, &response).IsNotFound());
    ::close(fd);
  }

  // The first client hung up; once its record drains, the slot frees and a
  // new connection is admitted again.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.registered_connections_for_test() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto third = MateClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_TRUE(third->Ping().ok());
  server.Stop();
}

// ---- admission control ----------------------------------------------

TEST(ServerTest, QueueFullShedsWithOverloaded) {
  Session session = OpenLakeSession();
  ServerOptions options;
  options.max_queue_depth = 2;
  options.dispatch_delay_for_test = std::chrono::milliseconds(50);
  MateServer server(&session, options);
  ASSERT_TRUE(server.Start().ok());

  const Table query = MakeQuery();
  const DiscoveryResult expected = DirectDiscover(query, {0, 1});

  constexpr int kClients = 8;
  constexpr int kQueriesEach = 2;
  std::atomic<int> served{0};
  std::atomic<int> shed{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      auto client = MateClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kQueriesEach; ++i) {
        auto response =
            client->Query(MakeQueryRequest(query, {0, 1}, 5, "t"));
        if (!response.ok()) {
          failures.fetch_add(1);
        } else if (response->status.IsOverloaded()) {
          shed.fetch_add(1);  // a typed shed, not a dropped connection
        } else if (response->status.ok()) {
          ExpectServedMatches(response->results, expected);
          served.fetch_add(1);
        } else {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(shed.load(), 0);    // 16 requests vs capacity ~20/s must shed
  EXPECT_GT(served.load(), 0);  // but admitted ones are all served
  EXPECT_EQ(served.load() + shed.load(), kClients * kQueriesEach);

  const ServerStatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.shed, static_cast<uint64_t>(shed.load()));
  EXPECT_EQ(stats.admitted, static_cast<uint64_t>(served.load()));
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].shed, static_cast<uint64_t>(shed.load()));
  server.Stop();
}

TEST(ServerTest, StopDrainsAdmittedInFlightQueries) {
  Session session = OpenLakeSession();
  ServerOptions options;
  options.max_queue_depth = 8;
  options.dispatch_delay_for_test = std::chrono::milliseconds(50);
  MateServer server(&session, options);
  ASSERT_TRUE(server.Start().ok());

  const Table query = MakeQuery();
  const DiscoveryResult expected = DirectDiscover(query, {0, 1});

  std::atomic<int> served{0};
  std::thread client_thread([&] {
    auto client = MateClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    auto response = client->Query(MakeQueryRequest(query, {0, 1}, 5, "t"));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response->status.ok()) << response->status.ToString();
    ExpectServedMatches(response->results, expected);
    served.fetch_add(1);
  });

  // Wait until the query is admitted (it sits behind the 50ms dispatch
  // delay), then stop: the drain must complete it, not drop it.
  while (server.stats().admitted < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();
  client_thread.join();
  EXPECT_EQ(served.load(), 1);
  EXPECT_EQ(server.stats().completed, 1u);

  // After the drain the port no longer accepts new work.
  auto late = MateClient::Connect("127.0.0.1", server.port());
  if (late.ok()) {
    auto response = late->Query(MakeQueryRequest(query, {0, 1}, 5, "t"));
    EXPECT_TRUE(!response.ok() || response->status.IsOverloaded());
  }
}

// ---- METRICS verb + slow-query log -----------------------------------

TEST(ServerTest, MetricsVerbServesPrometheusPageMatchingAdmissions) {
  Session session = OpenLakeSession();
  MateServer server(&session, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  const Table query = MakeQuery();
  auto client = MateClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 3; ++i) {
    auto response = client->Query(MakeQueryRequest(query, {0, 1}, 5, "t"));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response->status.ok()) << response->status.ToString();
  }

  auto page = client->Metrics();
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  for (const char* series :
       {"# TYPE mate_queries_total counter", "mate_queries_total 3",
        "# TYPE mate_queue_depth gauge",
        "# TYPE mate_query_latency_seconds histogram",
        "mate_query_latency_seconds_count 3",
        "mate_queries_completed_total 3",
        "mate_tenant_requests_total{tenant=\"t\"} 3",
        "mate_requests_total{verb=\"query\"} 3",
        // Monotone session-owned counts are typed counter (rate() works),
        // advanced by delta at render time.
        "# TYPE mate_result_cache_hits counter",
        "# TYPE mate_result_cache_misses counter",
        "# TYPE mate_corpus_evictions counter",
        "# TYPE mate_steering_decisions_total counter",
        "mate_result_cache_hits 2", "mate_result_cache_misses 1"}) {
    EXPECT_NE(page->find(series), std::string::npos)
        << "missing from page:\n" << series << "\npage:\n" << *page;
  }
  // Every line is either a comment or `name{labels} value`.
  size_t start = 0;
  while (start < page->size()) {
    size_t end = page->find('\n', start);
    ASSERT_NE(end, std::string::npos) << "page must end with a newline";
    const std::string line = page->substr(start, end - start);
    if (!line.empty() && line[0] != '#') {
      EXPECT_NE(line.find(' '), std::string::npos) << line;
    }
    start = end + 1;
  }
  server.Stop();
}

TEST(ServerTest, SlowQueriesDumpTheirSpanTreeAsJsonl) {
  Session session = OpenLakeSession();
  ServerOptions options;
  // Every query is "slow": the dispatcher sleeps 20ms against a 1ms
  // threshold, so the log line is deterministic.
  options.dispatch_delay_for_test = std::chrono::milliseconds(20);
  options.slow_query_threshold = std::chrono::milliseconds(1);
  const std::string log_path =
      testing::TempDir() + "/mate_slow_query_test.jsonl";
  std::remove(log_path.c_str());
  options.slow_query_log_path = log_path;
  MateServer server(&session, options);
  ASSERT_TRUE(server.Start().ok());

  const Table query = MakeQuery();
  const DiscoveryResult expected = DirectDiscover(query, {0, 1});
  auto client = MateClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto response = client->Query(MakeQueryRequest(query, {0, 1}, 5, "acme"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->status.ok()) << response->status.ToString();
  ExpectServedMatches(response->results, expected);
  server.Stop();

  std::ifstream log(log_path);
  ASSERT_TRUE(log.is_open()) << log_path;
  std::string line;
  ASSERT_TRUE(std::getline(log, line)) << "expected one slow-query record";
  for (const char* needle :
       {"\"tenant\":\"acme\"", "\"status\":\"ok\"", "\"wall_us\":",
        "\"name\":\"request\"", "\"name\":\"queue_wait\"",
        "\"name\":\"dispatch\"", "\"name\":\"discover\"",
        "\"name\":\"write_frame\""}) {
    EXPECT_NE(line.find(needle), std::string::npos)
        << "missing " << needle << " in: " << line;
  }
  EXPECT_FALSE(std::getline(log, line)) << "exactly one record expected";

  auto page_client = MateClient::Connect("127.0.0.1", server.port());
  EXPECT_FALSE(page_client.ok()) << "server is stopped";
}

TEST(ServerTest, FastQueriesUnderThresholdAreNotLogged) {
  Session session = OpenLakeSession();
  ServerOptions options;
  options.slow_query_threshold = std::chrono::seconds(30);
  const std::string log_path =
      testing::TempDir() + "/mate_slow_query_quiet_test.jsonl";
  std::remove(log_path.c_str());
  options.slow_query_log_path = log_path;
  MateServer server(&session, options);
  ASSERT_TRUE(server.Start().ok());

  const Table query = MakeQuery();
  auto client = MateClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto response = client->Query(MakeQueryRequest(query, {0, 1}, 5, "t"));
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->status.ok());
  server.Stop();

  std::ifstream log(log_path);
  ASSERT_TRUE(log.is_open()) << "log file is created when armed";
  std::string line;
  EXPECT_FALSE(std::getline(log, line))
      << "no query crossed the threshold, log must be empty: " << line;
}

// ---- tenant cardinality ----------------------------------------------

TEST(ServerTest, TenantChurnIsBoundedByMaxTenants) {
  Session session = OpenLakeSession();
  ServerOptions options;
  options.max_tenants = 8;
  options.tenant_cache_bytes = 1 << 16;
  MateServer server(&session, options);
  ASSERT_TRUE(server.Start().ok());

  const Table query = MakeQuery();
  const DiscoveryResult expected = DirectDiscover(query, {0, 1});
  auto client = MateClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // An adversarial client cycling through 10k distinct tenant names must
  // not mint 10k counter rows, metric series, or cache partitions: the
  // first max_tenants-1 names get dedicated rows, the rest fold into the
  // shared overflow row.
  constexpr int kNames = 10000;
  for (int i = 0; i < kNames; ++i) {
    auto response = client->Query(
        MakeQueryRequest(query, {0, 1}, 5, "t" + std::to_string(i)));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response->status.ok()) << response->status.ToString();
    if (i % 997 == 0) ExpectServedMatches(response->results, expected);
  }

  const ServerStatsSnapshot stats = server.stats();
  ASSERT_EQ(stats.tenants.size(), 8u);
  uint64_t total_requests = 0;
  const TenantStats* overflow = nullptr;
  for (const TenantStats& t : stats.tenants) {
    total_requests += t.requests;
    if (t.tenant == kOverflowTenant) overflow = &t;
  }
  EXPECT_EQ(total_requests, static_cast<uint64_t>(kNames));
  ASSERT_NE(overflow, nullptr) << "overflow row must exist";
  // 7 dedicated rows (t0..t6), everything else shares __other__.
  EXPECT_EQ(overflow->requests, static_cast<uint64_t>(kNames - 7));
  // The overflow row's partition was budgeted once and soaks up repeats:
  // one miss, then hits for every folded tenant.
  EXPECT_EQ(overflow->cache_capacity_bytes, 1u << 16);
  EXPECT_EQ(overflow->cache_misses, 1u);
  EXPECT_EQ(overflow->cache_hits, static_cast<uint64_t>(kNames - 8));

  // The metric registry is bounded too: exactly 8 tenant series.
  auto page = client->Metrics();
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  size_t series = 0;
  const std::string needle = "mate_tenant_requests_total{tenant=";
  for (size_t pos = page->find(needle); pos != std::string::npos;
       pos = page->find(needle, pos + 1)) {
    ++series;
  }
  EXPECT_EQ(series, 8u);
  server.Stop();
}

TEST(ServerTest, OversizedTenantNameIsRejectedAtDecode) {
  Session session = OpenLakeSession();
  MateServer server(&session, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  const Table query = MakeQuery();
  auto client = MateClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto response = client->Query(MakeQueryRequest(
      query, {0, 1}, 5, std::string(kMaxTenantNameBytes + 1, 'x')));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->status.IsInvalidArgument())
      << response->status.ToString();
  EXPECT_NE(response->status.message().find("tenant name"),
            std::string::npos)
      << response->status.ToString();

  // No tenant row was minted for the rejected name, and the connection
  // survived: a name at the limit is accepted.
  EXPECT_EQ(server.stats().tenants.size(), 0u);
  auto ok_response = client->Query(MakeQueryRequest(
      query, {0, 1}, 5, std::string(kMaxTenantNameBytes, 'x')));
  ASSERT_TRUE(ok_response.ok());
  EXPECT_TRUE(ok_response->status.ok()) << ok_response->status.ToString();
  EXPECT_EQ(server.stats().tenants.size(), 1u);
  server.Stop();
}

// ---- first-admission partition configuration -------------------------

TEST(ServerTest, PartitionConfigureRunsOutsideTheQueueLock) {
  Session session = OpenLakeSession();
  ServerOptions options;
  options.tenant_cache_bytes = 1 << 18;
  // Simulate a slow ResultCache resize: pre-hoist this sleep sat inside
  // queue_mu_ and stalled every concurrent admit/shed/stats behind it.
  options.configure_partition_delay_for_test =
      std::chrono::milliseconds(400);
  MateServer server(&session, options);
  ASSERT_TRUE(server.Start().ok());

  const Table query = MakeQuery();
  const DiscoveryResult expected = DirectDiscover(query, {0, 1});

  // Four racing first admissions of the same tenant.
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      auto client = MateClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      auto response =
          client->Query(MakeQueryRequest(query, {0, 1}, 5, "acme"));
      if (!response.ok() || !response->status.ok()) {
        failures.fetch_add(1);
        return;
      }
      ExpectServedMatches(response->results, expected);
    });
  }

  // While the claiming thread sleeps in the configure step, stats() must
  // answer promptly — the queue lock is free.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto t0 = std::chrono::steady_clock::now();
  const ServerStatsSnapshot mid = server.stats();
  const auto stats_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_LT(stats_ms.count(), 200)
      << "stats() stalled behind a partition configure";
  (void)mid;

  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Exactly one configure, however many first admissions raced.
  EXPECT_EQ(server.partition_configures_for_test(), 1u);
  const ServerStatsSnapshot stats = server.stats();
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].cache_capacity_bytes, 1u << 18);
  EXPECT_EQ(stats.tenants[0].admitted, 4u);

  // A second tenant triggers its own (single) configure.
  auto client = MateClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto response = client->Query(MakeQueryRequest(query, {0, 1}, 5, "globex"));
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->status.ok());
  EXPECT_EQ(server.partition_configures_for_test(), 2u);
  server.Stop();
}

// ---- slow-query log covers shed and decode-error requests ------------

/// Writes one frame in two halves with a pause between them, so the
/// server-side frame read (and with it the request's wall clock) takes at
/// least `gap`.
void SendFrameSlowly(int fd, std::string_view payload,
                     std::chrono::milliseconds gap) {
  std::string frame;
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  const size_t split = 4 + payload.size() / 2;
  ASSERT_EQ(::send(fd, frame.data(), split, 0),
            static_cast<ssize_t>(split));
  std::this_thread::sleep_for(gap);
  ASSERT_EQ(::send(fd, frame.data() + split, frame.size() - split, 0),
            static_cast<ssize_t>(frame.size() - split));
}

Status ReadResponseStatus(int fd) {
  std::string response;
  Status s = ReadFrame(fd, &response);
  if (!s.ok()) return s;
  Status server_status;
  std::string_view body;
  s = DecodeResponseStatus(response, &server_status, &body);
  return s.ok() ? server_status : s;
}

TEST(ServerTest, ShedAndDecodeErrorRequestsAreSlowLogged) {
  Session session = OpenLakeSession();
  ServerOptions options;
  options.max_queue_depth = 1;
  options.dispatch_delay_for_test = std::chrono::milliseconds(400);
  options.slow_query_threshold = std::chrono::milliseconds(1);
  const std::string log_path =
      testing::TempDir() + "/mate_slow_query_shed_test.jsonl";
  std::remove(log_path.c_str());
  options.slow_query_log_path = log_path;
  MateServer server(&session, options);
  ASSERT_TRUE(server.Start().ok());

  const Table query = MakeQuery();
  std::string payload;
  EncodeQueryRequest(MakeQueryRequest(query, {0, 1}, 5, "a"), &payload);

  // q1 is popped by the dispatcher (which then sleeps 400ms); q2 fills the
  // one-deep queue; q3 — transmitted slowly — is shed on a full queue.
  int fd1 = ConnectRaw(server.port());
  ASSERT_TRUE(WriteFrame(fd1, payload).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  int fd2 = ConnectRaw(server.port());
  ASSERT_TRUE(WriteFrame(fd2, payload).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::string shed_payload;
  EncodeQueryRequest(MakeQueryRequest(query, {0, 1}, 5, "slowpoke"),
                     &shed_payload);
  int fd3 = ConnectRaw(server.port());
  SendFrameSlowly(fd3, shed_payload, std::chrono::milliseconds(50));
  Status shed_status = ReadResponseStatus(fd3);
  EXPECT_TRUE(shed_status.IsOverloaded()) << shed_status.ToString();

  // A malformed QUERY body, also transmitted slowly: the decode-error
  // path must end the trace and log too.
  int fd4 = ConnectRaw(server.port());
  SendFrameSlowly(fd4, "\x01garbage-body", std::chrono::milliseconds(50));
  Status decode_status = ReadResponseStatus(fd4);
  EXPECT_TRUE(decode_status.IsInvalidArgument()) << decode_status.ToString();

  // The two admitted queries are served normally.
  EXPECT_TRUE(ReadResponseStatus(fd1).ok());
  EXPECT_TRUE(ReadResponseStatus(fd2).ok());
  ::close(fd1);
  ::close(fd2);
  ::close(fd3);
  ::close(fd4);
  server.Stop();

  std::ifstream log(log_path);
  ASSERT_TRUE(log.is_open()) << log_path;
  std::string line;
  bool found_shed = false;
  bool found_decode_error = false;
  while (std::getline(log, line)) {
    if (line.find("\"tenant\":\"slowpoke\"") != std::string::npos) {
      found_shed = true;
      // The shed record carries the typed overload status, covers the
      // frame read (epoch rewind: wall includes the slow transmission),
      // and never reached the query pipeline.
      EXPECT_NE(line.find("queue full"), std::string::npos) << line;
      EXPECT_NE(line.find("\"name\":\"read_frame\""), std::string::npos)
          << line;
      EXPECT_EQ(line.find("\"name\":\"discover\""), std::string::npos)
          << line;
      const size_t wall_pos = line.find("\"wall_us\":");
      ASSERT_NE(wall_pos, std::string::npos) << line;
      EXPECT_GE(std::stoull(line.substr(wall_pos + 10)), 40000u)
          << "wall must include the slow frame read: " << line;
    } else if (line.find("\"tenant\":\"\"") != std::string::npos) {
      found_decode_error = true;
      EXPECT_NE(line.find("\"name\":\"read_frame\""), std::string::npos)
          << line;
      EXPECT_NE(line.find("\"name\":\"decode\""), std::string::npos) << line;
      EXPECT_EQ(line.find("\"name\":\"dispatch\""), std::string::npos)
          << line;
    }
  }
  EXPECT_TRUE(found_shed) << "shed request missing from the slow-query log";
  EXPECT_TRUE(found_decode_error)
      << "decode-error request missing from the slow-query log";
}

// ---- SLO-aware steering ----------------------------------------------

uint64_t MetricValue(const std::string& page, const std::string& series) {
  const size_t pos = page.find(series + " ");
  EXPECT_NE(pos, std::string::npos) << series << " missing from:\n" << page;
  if (pos == std::string::npos) return ~0ull;
  return std::stoull(page.substr(pos + series.size() + 1));
}

void ExpectSteeringCountsAgree(MateServer* server, MateClient* client) {
  const ServerStatsSnapshot stats = server->stats();
  auto page = client->Metrics();
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_EQ(
      MetricValue(*page, "mate_steering_decisions_total{mode=\"serial\"}"),
      stats.steering_serial);
  EXPECT_EQ(
      MetricValue(*page, "mate_steering_decisions_total{mode=\"partial\"}"),
      stats.steering_partial);
  EXPECT_EQ(
      MetricValue(*page, "mate_steering_decisions_total{mode=\"full\"}"),
      stats.steering_full);
}

TEST(ServerTest, SteeringFullFanoutWhenIdleIsBitIdentical) {
  Session session = OpenLakeSession();
  ServerOptions options;
  options.steering = SteeringMode::kAuto;
  options.steering_min_items = 0;  // every query counts as "big"
  MateServer server(&session, options);
  ASSERT_TRUE(server.Start().ok());

  const Table query = MakeQuery();
  const DiscoveryResult expected = DirectDiscover(query, {0, 1});
  auto client = MateClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 3; ++i) {
    auto response = client->Query(MakeQueryRequest(query, {0, 1}, 5, "t"));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response->status.ok()) << response->status.ToString();
    ExpectServedMatches(response->results, expected);
  }

  // Idle queue, no SLO target: every decision is full fan-out.
  const ServerStatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.steering_full, 3u);
  EXPECT_EQ(stats.steering_serial, 0u);
  EXPECT_EQ(stats.steering_partial, 0u);
  ExpectSteeringCountsAgree(&server, &*client);
  server.Stop();
}

TEST(ServerTest, SteeringDegradesToSerialWhenOverSlo) {
  Session session = OpenLakeSession();
  ServerOptions options;
  options.steering = SteeringMode::kAuto;
  options.steering_min_items = 0;
  // Every served query takes >= 20ms (dispatch delay) against a 1ms
  // target, so the SLO is blown from the first completion onward.
  options.target_p99 = std::chrono::milliseconds(1);
  options.dispatch_delay_for_test = std::chrono::milliseconds(20);
  MateServer server(&session, options);
  ASSERT_TRUE(server.Start().ok());

  const Table query = MakeQuery();
  const DiscoveryResult expected = DirectDiscover(query, {0, 1});
  auto client = MateClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // First query: no latency samples yet, queue idle -> full fan-out.
  // Second query: live p99 (~20ms) is over the 1ms target -> serial, and
  // the served result is still bit-identical.
  for (int i = 0; i < 2; ++i) {
    auto response = client->Query(MakeQueryRequest(query, {0, 1}, 5, "t"));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response->status.ok()) << response->status.ToString();
    ExpectServedMatches(response->results, expected);
  }

  const ServerStatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.steering_full, 1u);
  EXPECT_EQ(stats.steering_serial, 1u);
  EXPECT_EQ(stats.steering_partial, 0u);
  ExpectSteeringCountsAgree(&server, &*client);
  server.Stop();
}

TEST(ServerTest, SteeringDegradesUnderQueuePressureAndStaysBitIdentical) {
  Session session = OpenLakeSession();
  ServerOptions options;
  options.steering = SteeringMode::kAuto;
  options.steering_min_items = 0;
  options.max_queue_depth = 4;  // "deep" at backlog >= 2
  options.dispatch_delay_for_test = std::chrono::milliseconds(150);
  MateServer server(&session, options);
  ASSERT_TRUE(server.Start().ok());

  const Table query = MakeQuery();
  const DiscoveryResult expected = DirectDiscover(query, {0, 1});
  std::string payload;
  EncodeQueryRequest(MakeQueryRequest(query, {0, 1}, 5, "t"), &payload);

  // q1 is dequeued against an empty queue (full fan-out), then sleeps in
  // the dispatcher while q2..q4 pile up: q2 sees a backlog of 2 (deep ->
  // serial), q3 a backlog of 1 (partial), q4 an empty queue again (full).
  int fds[4];
  fds[0] = ConnectRaw(server.port());
  ASSERT_TRUE(WriteFrame(fds[0], payload).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (int i = 1; i < 4; ++i) {
    fds[i] = ConnectRaw(server.port());
    ASSERT_TRUE(WriteFrame(fds[i], payload).ok());
  }

  for (int i = 0; i < 4; ++i) {
    std::string response;
    ASSERT_TRUE(ReadFrame(fds[i], &response).ok()) << "query " << i;
    Status server_status;
    std::string_view body;
    ASSERT_TRUE(
        DecodeResponseStatus(response, &server_status, &body).ok());
    ASSERT_TRUE(server_status.ok()) << server_status.ToString();
    std::vector<ServedResult> results;
    ASSERT_TRUE(DecodeQueryResponseBody(body, &results).ok());
    ExpectServedMatches(results, expected);
    ::close(fds[i]);
  }

  const ServerStatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.steering_full, 2u);
  EXPECT_EQ(stats.steering_serial, 1u);
  EXPECT_EQ(stats.steering_partial, 1u);
  auto client = MateClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ExpectSteeringCountsAgree(&server, &*client);
  server.Stop();
}

}  // namespace
}  // namespace mate
