#include "index/index_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "index/index_builder.h"
#include "workload/generator.h"

namespace mate {
namespace {

Corpus MakeCorpus() {
  Vocabulary vocab = Vocabulary::Generate(300, Vocabulary::Style::kMixed, 7);
  CorpusSpec spec;
  spec.num_tables = 20;
  spec.seed = 3;
  return GenerateCorpus(spec, vocab);
}

struct BuiltIndex {
  std::unique_ptr<InvertedIndex> index;
  IndexBuildReport report;
};

BuiltIndex Build(const Corpus& corpus, HashFamily family) {
  IndexBuildOptions options;
  options.hash_family = family;
  BuiltIndex built;
  auto index = BuildIndexWithReport(corpus, options, &built.report);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  built.index = std::move(*index);
  return built;
}

void ExpectIndexesEqual(const Corpus& corpus, const InvertedIndex& a,
                        const InvertedIndex& b) {
  EXPECT_EQ(a.NumPostingEntries(), b.NumPostingEntries());
  EXPECT_EQ(a.hash_bits(), b.hash_bits());
  EXPECT_EQ(a.hash().Name(), b.hash().Name());
  for (TableId t = 0; t < corpus.NumTables(); ++t) {
    const Table& table = corpus.table(t);
    for (RowId r = 0; r < table.NumRows(); ++r) {
      EXPECT_EQ(a.superkeys().Get(t, r), b.superkeys().Get(t, r));
    }
  }
  a.ForEachPostingList([&](ValueId id, const PostingList& list) {
    const PostingList* other = b.Lookup(a.dictionary().ValueOf(id));
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(list, *other);
  });
}

TEST(IndexIoTest, RoundTripXash) {
  Corpus corpus = MakeCorpus();
  BuiltIndex built = Build(corpus, HashFamily::kXash);
  std::string bytes;
  SerializeIndex(*built.index, HashFamily::kXash,
                 built.report.corpus_stats, &bytes);
  auto loaded = DeserializeIndex(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectIndexesEqual(corpus, *built.index, **loaded);
}

TEST(IndexIoTest, LoadedHashIsBitIdentical) {
  // The loaded index must answer probes identically: hash a query value
  // with both hash functions and compare signatures.
  Corpus corpus = MakeCorpus();
  BuiltIndex built = Build(corpus, HashFamily::kXash);
  std::string bytes;
  SerializeIndex(*built.index, HashFamily::kXash,
                 built.report.corpus_stats, &bytes);
  auto loaded = DeserializeIndex(bytes);
  ASSERT_TRUE(loaded.ok());
  for (const char* probe : {"muhammad", "lee", "us", "1999", "x y z"}) {
    EXPECT_EQ(built.index->hash().HashValue(probe),
              (*loaded)->hash().HashValue(probe))
        << probe;
  }
}

TEST(IndexIoTest, RoundTripBloom) {
  Corpus corpus = MakeCorpus();
  BuiltIndex built = Build(corpus, HashFamily::kBloom);
  std::string bytes;
  SerializeIndex(*built.index, HashFamily::kBloom,
                 built.report.corpus_stats, &bytes);
  auto loaded = DeserializeIndex(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectIndexesEqual(corpus, *built.index, **loaded);
}

TEST(IndexIoTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeIndex("not an index").ok());
  EXPECT_FALSE(DeserializeIndex("").ok());
}

TEST(IndexIoTest, RejectsTruncation) {
  Corpus corpus = MakeCorpus();
  BuiltIndex built = Build(corpus, HashFamily::kXash);
  std::string bytes;
  SerializeIndex(*built.index, HashFamily::kXash,
                 built.report.corpus_stats, &bytes);
  for (size_t frac = 1; frac <= 4; ++frac) {
    auto loaded = DeserializeIndex(
        std::string_view(bytes).substr(0, bytes.size() * frac / 5));
    EXPECT_FALSE(loaded.ok()) << frac;
  }
}

TEST(IndexIoTest, FileRoundTrip) {
  Corpus corpus = MakeCorpus();
  BuiltIndex built = Build(corpus, HashFamily::kXash);
  std::string path = testing::TempDir() + "/mate_index_io_test.bin";
  ASSERT_TRUE(SaveIndex(*built.index, HashFamily::kXash,
                        built.report.corpus_stats, path)
                  .ok());
  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectIndexesEqual(corpus, *built.index, **loaded);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mate
