// §5.4 maintenance: after any sequence of edits, the incrementally updated
// index must be equivalent to an index rebuilt from scratch.

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "index/inverted_index.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/vocabulary.h"

namespace mate {
namespace {

std::unique_ptr<InvertedIndex> Build(const Corpus& corpus) {
  IndexBuildOptions options;
  options.use_corpus_stats = false;  // keep hash params edit-independent
  auto index = BuildIndex(corpus, options);
  EXPECT_TRUE(index.ok());
  return std::move(*index);
}

// Compares postings and super keys of `updated` against a fresh rebuild.
void ExpectEquivalentToRebuild(const Corpus& corpus,
                               const InvertedIndex& updated) {
  std::unique_ptr<InvertedIndex> fresh = Build(corpus);
  ASSERT_EQ(updated.NumPostingEntries(), fresh->NumPostingEntries());
  // Every live cell must resolve identically in both indexes.
  for (TableId t = 0; t < corpus.NumTables(); ++t) {
    const Table& table = corpus.table(t);
    for (RowId r = 0; r < table.NumRows(); ++r) {
      if (table.IsRowDeleted(r)) continue;
      for (ColumnId c = 0; c < table.NumColumns(); ++c) {
        std::string norm = NormalizeValue(table.cell(r, c));
        const PostingList* a = updated.Lookup(norm);
        const PostingList* b = fresh->Lookup(norm);
        ASSERT_NE(a, nullptr) << norm;
        ASSERT_NE(b, nullptr) << norm;
        EXPECT_EQ(*a, *b) << norm;
      }
      EXPECT_EQ(updated.superkeys().Get(t, r), fresh->superkeys().Get(t, r))
          << "t=" << t << " r=" << r;
    }
  }
}

Corpus SmallCorpus() {
  Corpus corpus;
  Table t("base");
  t.AddColumn("a");
  t.AddColumn("b");
  t.AddColumn("c");
  (void)t.AppendRow({"red", "circle", "small"});
  (void)t.AppendRow({"blue", "square", "large"});
  (void)t.AppendRow({"red", "triangle", "medium"});
  corpus.AddTable(std::move(t));
  return corpus;
}

TEST(IndexUpdatesTest, InsertTable) {
  Corpus corpus = SmallCorpus();
  auto index = Build(corpus);
  Table extra("extra");
  extra.AddColumn("x");
  (void)extra.AppendRow({"red"});
  (void)extra.AppendRow({"green"});
  TableId t = corpus.AddTable(std::move(extra));
  ASSERT_TRUE(index->InsertTable(corpus, t).ok());
  ExpectEquivalentToRebuild(corpus, *index);
  EXPECT_EQ(index->Lookup("red")->size(), 3u);
}

TEST(IndexUpdatesTest, InsertRow) {
  Corpus corpus = SmallCorpus();
  auto index = Build(corpus);
  auto row = corpus.mutable_table(0)->AppendRow({"teal", "hexagon", "tiny"});
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(index->InsertRow(corpus, 0, *row).ok());
  ExpectEquivalentToRebuild(corpus, *index);
}

TEST(IndexUpdatesTest, AddAppendedColumn) {
  Corpus corpus = SmallCorpus();
  auto index = Build(corpus);
  BitVector key_before = index->superkeys().Get(0, 0);
  ASSERT_TRUE(corpus.mutable_table(0)
                  ->AddColumnWithCells("d", {"alpha", "beta", "gamma"})
                  .ok());
  ASSERT_TRUE(index->AddAppendedColumn(corpus, 0).ok());
  ExpectEquivalentToRebuild(corpus, *index);
  // §5.4: the new column ORs into the super key, so the old key is a subset.
  EXPECT_TRUE(key_before.IsSubsetOf(index->superkeys().Get(0, 0)));
  EXPECT_EQ(index->Lookup("alpha")->size(), 1u);
}

TEST(IndexUpdatesTest, UpdateCellRehashesRow) {
  Corpus corpus = SmallCorpus();
  auto index = Build(corpus);
  std::string old_norm = NormalizeValue(corpus.table(0).cell(0, 1));
  ASSERT_TRUE(corpus.mutable_table(0)->SetCell(0, 1, "ellipse").ok());
  ASSERT_TRUE(index->UpdateCell(corpus, 0, 0, 1, old_norm).ok());
  ExpectEquivalentToRebuild(corpus, *index);
  EXPECT_EQ(index->Lookup("circle"), nullptr);
  ASSERT_NE(index->Lookup("ellipse"), nullptr);
  // The stale value's signature must no longer be guaranteed-masked: the
  // rehash removed its bits (unless shared with live values).
  BitVector new_sig = index->hash().HashValue("ellipse");
  EXPECT_TRUE(index->superkeys().Covers(0, 0, new_sig));
}

TEST(IndexUpdatesTest, DeleteRowRemovesPostings) {
  Corpus corpus = SmallCorpus();
  auto index = Build(corpus);
  ASSERT_TRUE(index->DeleteRow(corpus, 0, 0).ok());
  ASSERT_TRUE(corpus.mutable_table(0)->DeleteRow(0).ok());
  ExpectEquivalentToRebuild(corpus, *index);
  ASSERT_NE(index->Lookup("red"), nullptr);  // still in row 2
  EXPECT_EQ(index->Lookup("red")->size(), 1u);
  EXPECT_EQ(index->Lookup("circle"), nullptr);
}

TEST(IndexUpdatesTest, DeleteTableRemovesAllPostings) {
  Corpus corpus = SmallCorpus();
  Table other("other");
  other.AddColumn("x");
  (void)other.AppendRow({"red"});
  corpus.AddTable(std::move(other));
  auto index = Build(corpus);
  ASSERT_TRUE(index->DeleteTable(corpus, 0).ok());
  ASSERT_NE(index->Lookup("red"), nullptr);
  EXPECT_EQ(index->Lookup("red")->size(), 1u);
  EXPECT_EQ(index->Lookup("red")->front().table_id, 1u);
  EXPECT_EQ(index->Lookup("square"), nullptr);
}

TEST(IndexUpdatesTest, DropColumnReKeysAndRehashes) {
  Corpus corpus = SmallCorpus();
  auto index = Build(corpus);
  // Capture the dropped column's cells, then edit corpus and index.
  std::vector<std::string> removed;
  for (RowId r = 0; r < corpus.table(0).NumRows(); ++r) {
    removed.push_back(corpus.table(0).cell(r, 1));
  }
  ASSERT_TRUE(corpus.mutable_table(0)->DropColumn(1).ok());
  ASSERT_TRUE(index->DropColumn(corpus, 0, 1, removed).ok());
  ExpectEquivalentToRebuild(corpus, *index);
  EXPECT_EQ(index->Lookup("circle"), nullptr);
  // "small" moved from column 2 to column 1.
  ASSERT_NE(index->Lookup("small"), nullptr);
  EXPECT_EQ(index->Lookup("small")->front().column_id, 1u);
}

TEST(IndexUpdatesTest, RandomizedEditScriptMatchesRebuild) {
  Rng rng(4242);
  Corpus corpus = SmallCorpus();
  auto index = Build(corpus);

  for (int step = 0; step < 120; ++step) {
    int op = static_cast<int>(rng.Uniform(5));
    TableId t = static_cast<TableId>(rng.Uniform(corpus.NumTables()));
    Table* table = corpus.mutable_table(t);
    switch (op) {
      case 0: {  // insert row
        std::vector<std::string> cells;
        for (ColumnId c = 0; c < table->NumColumns(); ++c) {
          cells.push_back(GenerateWord(&rng, 2, 8));
        }
        auto r = table->AppendRow(std::move(cells));
        ASSERT_TRUE(r.ok());
        ASSERT_TRUE(index->InsertRow(corpus, t, *r).ok());
        break;
      }
      case 1: {  // update cell
        if (table->NumRows() == 0 || table->NumColumns() == 0) break;
        RowId r = static_cast<RowId>(rng.Uniform(table->NumRows()));
        if (table->IsRowDeleted(r)) break;
        ColumnId c = static_cast<ColumnId>(rng.Uniform(table->NumColumns()));
        std::string old_norm = NormalizeValue(table->cell(r, c));
        ASSERT_TRUE(table->SetCell(r, c, GenerateWord(&rng, 2, 8)).ok());
        ASSERT_TRUE(index->UpdateCell(corpus, t, r, c, old_norm).ok());
        break;
      }
      case 2: {  // delete row
        if (table->NumLiveRows() <= 1) break;
        RowId r = static_cast<RowId>(rng.Uniform(table->NumRows()));
        if (table->IsRowDeleted(r)) break;
        ASSERT_TRUE(index->DeleteRow(corpus, t, r).ok());
        ASSERT_TRUE(table->DeleteRow(r).ok());
        break;
      }
      case 3: {  // add column
        if (table->NumColumns() >= 6) break;
        std::vector<std::string> cells;
        for (RowId r = 0; r < table->NumRows(); ++r) {
          cells.push_back(GenerateWord(&rng, 2, 8));
        }
        ASSERT_TRUE(table
                        ->AddColumnWithCells(
                            "col" + std::to_string(table->NumColumns()),
                            std::move(cells))
                        .ok());
        ASSERT_TRUE(index->AddAppendedColumn(corpus, t).ok());
        break;
      }
      case 4: {  // new table
        if (corpus.NumTables() >= 5) break;
        Table fresh("t" + std::to_string(corpus.NumTables()));
        fresh.AddColumn("a");
        fresh.AddColumn("b");
        (void)fresh.AppendRow({GenerateWord(&rng, 2, 8),
                               GenerateWord(&rng, 2, 8)});
        TableId added = corpus.AddTable(std::move(fresh));
        ASSERT_TRUE(index->InsertTable(corpus, added).ok());
        break;
      }
    }
  }
  ExpectEquivalentToRebuild(corpus, *index);
}

TEST(IndexUpdatesTest, OutOfRangeEditsFail) {
  Corpus corpus = SmallCorpus();
  auto index = Build(corpus);
  EXPECT_TRUE(index->InsertTable(corpus, 99).IsOutOfRange());
  EXPECT_TRUE(index->InsertRow(corpus, 0, 99).IsOutOfRange());
  EXPECT_TRUE(index->DeleteRow(corpus, 0, 99).IsOutOfRange());
  EXPECT_TRUE(index->UpdateCell(corpus, 0, 99, 0, "x").IsOutOfRange());
  EXPECT_TRUE(index->DropColumn(corpus, 0, 0, {}).IsInvalidArgument());
}

}  // namespace
}  // namespace mate
