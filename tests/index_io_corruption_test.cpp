// Loader hardening: every malformed index image must surface kCorruption —
// from phase 1 (PhasedIndexLoad::Begin / Session::Open) when the damage is
// visible in the header, shape, dictionary, or posting-region extent, or
// from the readiness check (WaitUntilReady / the first Discover) when it
// hides in the streamed sections. Never a crash, and never a silently
// empty or partial index. Includes a fuzz-style loop over random
// truncation offsets and checks the section/offset-bearing error messages.

#include "index/index_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/session.h"
#include "index/index_builder.h"
#include "storage/corpus_io.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace mate {
namespace {

Corpus MakeCorpus() {
  Vocabulary vocab = Vocabulary::Generate(200, Vocabulary::Style::kMixed, 7);
  CorpusSpec spec;
  spec.num_tables = 12;
  spec.seed = 5;
  return GenerateCorpus(spec, vocab);
}

// One serialized world: corpus + index files plus the pristine index bytes
// and the offset where the super-key section starts (everything before it
// is header/shape/dictionary/postings).
struct Fixture {
  Corpus corpus;
  std::string corpus_path;
  std::string index_path;
  std::string index_bytes;
  size_t superkey_offset = 0;
};

Fixture MakeFixture(const std::string& tag) {
  Fixture f;
  f.corpus = MakeCorpus();
  IndexBuildOptions options;
  IndexBuildReport report;
  auto index = BuildIndexWithReport(f.corpus, options, &report);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  SerializeIndex(**index, HashFamily::kXash, report.corpus_stats,
                 &f.index_bytes);
  // The super-key section is exactly what AppendToString emits, and it is
  // the image's suffix.
  std::string superkeys;
  (*index)->superkeys().AppendToString(&superkeys);
  f.superkey_offset = f.index_bytes.size() - superkeys.size();
  f.corpus_path = testing::TempDir() + "/mate_corrupt_" + tag + ".corpus";
  f.index_path = testing::TempDir() + "/mate_corrupt_" + tag + ".index";
  EXPECT_TRUE(SaveCorpus(f.corpus, f.corpus_path).ok());
  EXPECT_TRUE(WriteFileAtomic(f.index_path, f.index_bytes).ok());
  return f;
}

void RemoveFixture(const Fixture& f) {
  std::remove(f.corpus_path.c_str());
  std::remove(f.index_path.c_str());
}

// Writes `bytes` over the fixture's index file.
void OverwriteIndex(const Fixture& f, std::string_view bytes) {
  ASSERT_TRUE(WriteFileAtomic(f.index_path, bytes).ok());
}

// Opens a phased session over the (possibly tampered) files and returns
// the combined verdict: OK only if Open, readiness, and a real probe all
// succeed — the "silently empty index" failure mode would pass Open but
// must be caught by the readiness check.
Status PhasedOpenVerdict(const Fixture& f) {
  SessionOptions options;
  options.corpus_path = f.corpus_path;
  options.index_path = f.index_path;
  options.num_threads = 2;
  auto session = Session::Open(std::move(options));
  if (!session.ok()) return session.status();
  return session->WaitUntilReady();
}

// ---- phase-1 failures ----------------------------------------------

TEST(IndexIoCorruptionTest, BadMagicFailsPhaseOne) {
  Fixture f = MakeFixture("magic");
  std::string bytes = f.index_bytes;
  bytes[0] ^= 0x5a;
  OverwriteIndex(f, bytes);

  auto direct = PhasedIndexLoad::Begin(f.index_path);
  ASSERT_FALSE(direct.ok());
  EXPECT_TRUE(direct.status().IsCorruption()) << direct.status().ToString();

  Status verdict = PhasedOpenVerdict(f);
  EXPECT_TRUE(verdict.IsCorruption()) << verdict.ToString();
  RemoveFixture(f);
}

TEST(IndexIoCorruptionTest, UnsupportedVersionNamesTheVersion) {
  Fixture f = MakeFixture("version");
  std::string bytes = f.index_bytes;
  bytes[8] = 99;  // little-endian fixed32 version right after the magic
  OverwriteIndex(f, bytes);
  auto loaded = LoadIndex(f.index_path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos)
      << loaded.status().ToString();
  RemoveFixture(f);
}

TEST(IndexIoCorruptionTest, ShortPostingRegionFailsPhaseOne) {
  Fixture f = MakeFixture("shortpl");
  // Cut inside the posting region: the declared extent overruns the file,
  // so Begin itself must reject — before any postings are parsed.
  ASSERT_GT(f.superkey_offset, 1u);
  OverwriteIndex(f, std::string_view(f.index_bytes)
                        .substr(0, f.superkey_offset - 1));
  auto begin = PhasedIndexLoad::Begin(f.index_path);
  ASSERT_FALSE(begin.ok());
  EXPECT_TRUE(begin.status().IsCorruption()) << begin.status().ToString();
  EXPECT_NE(begin.status().message().find("posting"), std::string::npos)
      << begin.status().ToString();
  RemoveFixture(f);
}

TEST(IndexIoCorruptionTest, TableAndRowCountSkewFailPhaseOne) {
  Fixture f = MakeFixture("skew");
  {
    // Corpus with an extra table: table-count skew against the shape
    // header, caught synchronously by Open.
    Corpus bigger = MakeCorpus();
    Table extra("extra");
    extra.AddColumn("a");
    (void)extra.AppendRow({"x"});
    bigger.AddTable(std::move(extra));
    ASSERT_TRUE(SaveCorpus(bigger, f.corpus_path).ok());
    SessionOptions options;
    options.corpus_path = f.corpus_path;
    options.index_path = f.index_path;
    auto session = Session::Open(std::move(options));
    ASSERT_FALSE(session.ok());
    EXPECT_TRUE(session.status().IsCorruption())
        << session.status().ToString();
  }
  {
    // Extra row in one table: row-count skew.
    Corpus edited = MakeCorpus();
    std::vector<std::string> row(edited.table(0).NumColumns(), "zzz");
    (void)edited.mutable_table(0)->AppendRow(std::move(row));
    ASSERT_TRUE(SaveCorpus(edited, f.corpus_path).ok());
    SessionOptions options;
    options.corpus_path = f.corpus_path;
    options.index_path = f.index_path;
    auto session = Session::Open(std::move(options));
    ASSERT_FALSE(session.ok());
    EXPECT_TRUE(session.status().IsCorruption())
        << session.status().ToString();
  }
  RemoveFixture(f);
}

// ---- deferred (readiness-check) failures ---------------------------

TEST(IndexIoCorruptionTest, TruncatedSuperKeysFailAtReadinessNotOpen) {
  Fixture f = MakeFixture("sktrunc");
  // Cut inside the super-key section: phase 1 sees an intact posting
  // region, so Open succeeds — the corruption must surface from the
  // readiness check (and from the first Discover), never as a silently
  // partial index.
  const size_t cut = f.superkey_offset + (f.index_bytes.size() -
                                          f.superkey_offset) / 2;
  ASSERT_GT(f.index_bytes.size(), cut);
  OverwriteIndex(f, std::string_view(f.index_bytes).substr(0, cut));

  SessionOptions options;
  options.corpus_path = f.corpus_path;
  options.index_path = f.index_path;
  options.num_threads = 2;
  auto session = Session::Open(std::move(options));
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  Status ready = session->WaitUntilReady();
  EXPECT_TRUE(ready.IsCorruption()) << ready.ToString();
  EXPECT_NE(ready.message().find("super"), std::string::npos)
      << ready.ToString();

  // Discover reports the same deferred corruption instead of running on a
  // half-built index.
  Table query("q");
  query.AddColumn("a");
  (void)query.AppendRow({"x"});
  QuerySpec spec;
  spec.table = &query;
  spec.key_columns = {0};
  spec.options.k = 3;
  auto result = session->Discover(spec);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption()) << result.status().ToString();
  RemoveFixture(f);
}

TEST(IndexIoCorruptionTest, TrailingGarbageFailsAtReadiness) {
  Fixture f = MakeFixture("trailing");
  std::string bytes = f.index_bytes + "garbage";
  OverwriteIndex(f, bytes);
  Status verdict = PhasedOpenVerdict(f);
  EXPECT_TRUE(verdict.IsCorruption()) << verdict.ToString();
  EXPECT_NE(verdict.message().find("trailing"), std::string::npos)
      << verdict.ToString();
  RemoveFixture(f);
}

// ---- fuzz-style truncation sweep -----------------------------------

TEST(IndexIoCorruptionTest, RandomTruncationsNeverCrashOrPassSilently) {
  Fixture f = MakeFixture("fuzz");
  Rng rng(2024);
  std::vector<size_t> cuts = {0, 1, 7, 8, 9, 11, 12, 13,
                              f.index_bytes.size() - 1};
  for (int i = 0; i < 48; ++i) {
    cuts.push_back(rng.Uniform(f.index_bytes.size()));
  }
  for (size_t cut : cuts) {
    SCOPED_TRACE("cut=" + std::to_string(cut) + "/" +
                 std::to_string(f.index_bytes.size()));
    const std::string_view truncated =
        std::string_view(f.index_bytes).substr(0, cut);

    // Blocking load: must reject.
    auto direct = DeserializeIndex(truncated);
    ASSERT_FALSE(direct.ok());
    EXPECT_TRUE(direct.status().IsCorruption()) << direct.status().ToString();

    // Phased session open: Open may accept (damage past phase 1), but then
    // the readiness check must reject. Every 4th cut to keep runtime sane.
    if (cut % 4 == 0) {
      OverwriteIndex(f, truncated);
      Status verdict = PhasedOpenVerdict(f);
      EXPECT_TRUE(verdict.IsCorruption()) << verdict.ToString();
    }
  }
  RemoveFixture(f);
}

// ---- error messages carry section + offset (the LoadIndex fix) ------

TEST(IndexIoCorruptionTest, MidPostingErrorsNameSectionAndOffset) {
  Fixture f = MakeFixture("offsets");
  // A truncation that lands in the posting region: the declared extent
  // overruns the file and the error must say which section and where.
  OverwriteIndex(f, std::string_view(f.index_bytes)
                        .substr(0, f.superkey_offset - 1));
  auto loaded = LoadIndex(f.index_path);
  ASSERT_FALSE(loaded.ok());
  const std::string& message = loaded.status().message();
  EXPECT_NE(message.find("postings section"), std::string::npos) << message;
  EXPECT_NE(message.find("byte offset"), std::string::npos) << message;

  // And a cut inside the super keys names that section.
  const size_t cut = f.index_bytes.size() - 4;
  OverwriteIndex(f, std::string_view(f.index_bytes).substr(0, cut));
  auto sk = LoadIndex(f.index_path);
  ASSERT_FALSE(sk.ok());
  EXPECT_NE(sk.status().message().find("super-key section"),
            std::string::npos)
      << sk.status().ToString();
  RemoveFixture(f);
}

}  // namespace
}  // namespace mate