#include "baselines/scr.h"

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "workload/generator.h"
#include "workload/query_gen.h"

namespace mate {
namespace {

struct World {
  Corpus corpus;
  std::vector<QueryCase> queries;
  std::unique_ptr<InvertedIndex> index;
};

World MakeWorld(uint64_t seed) {
  World world;
  Vocabulary vocab =
      Vocabulary::Generate(400, Vocabulary::Style::kMixed, seed);
  CorpusSpec spec;
  spec.num_tables = 40;
  spec.seed = seed + 1;
  world.corpus = GenerateCorpus(spec, vocab);
  QuerySetSpec qspec;
  qspec.num_queries = 3;
  qspec.query_rows = 40;
  qspec.key_size = 2;
  qspec.planted_tables = 6;
  qspec.seed = seed + 2;
  world.queries = GenerateQueries(&world.corpus, vocab, qspec);
  auto index = BuildIndex(world.corpus, IndexBuildOptions{});
  EXPECT_TRUE(index.ok());
  world.index = std::move(*index);
  return world;
}

TEST(ScrTest, RowFilterFlagIsForcedOff) {
  World world = MakeWorld(11);
  ScrSearch scr(&world.corpus, world.index.get());
  DiscoveryOptions options;
  options.k = 5;
  options.use_row_filter = true;  // must be ignored by SCR
  const QueryCase& qc = world.queries[0];
  DiscoveryResult scr_result = scr.Discover(qc.query, qc.key_columns,
                                            options);
  // SCR sends every checked row to verification — no super-key pruning.
  EXPECT_EQ(scr_result.stats.rows_checked,
            scr_result.stats.rows_sent_to_verification);
}

TEST(ScrTest, VerifiesAtLeastAsManyRowsAsMate) {
  World world = MakeWorld(13);
  ScrSearch scr(&world.corpus, world.index.get());
  MateSearch mate(&world.corpus, world.index.get());
  DiscoveryOptions options;
  options.k = 5;
  for (const QueryCase& qc : world.queries) {
    DiscoveryResult s = scr.Discover(qc.query, qc.key_columns, options);
    DiscoveryResult m = mate.Discover(qc.query, qc.key_columns, options);
    EXPECT_GE(s.stats.rows_sent_to_verification,
              m.stats.rows_sent_to_verification);
    EXPECT_GE(s.stats.value_comparisons, m.stats.value_comparisons);
    // And identical answers.
    ASSERT_EQ(s.top_k.size(), m.top_k.size());
    for (size_t i = 0; i < s.top_k.size(); ++i) {
      EXPECT_EQ(s.top_k[i].table_id, m.top_k[i].table_id);
      EXPECT_EQ(s.top_k[i].joinability, m.top_k[i].joinability);
    }
  }
}

TEST(ScrTest, TableFiltersStillPrune) {
  // SCR keeps Algorithm 1's table filters (§7.1.1): with them disabled it
  // must evaluate at least as many tables.
  World world = MakeWorld(17);
  ScrSearch scr(&world.corpus, world.index.get());
  DiscoveryOptions with, without;
  with.k = without.k = 2;
  without.use_table_filters = false;
  uint64_t evaluated_with = 0, evaluated_without = 0;
  for (const QueryCase& qc : world.queries) {
    evaluated_with +=
        scr.Discover(qc.query, qc.key_columns, with).stats.tables_evaluated;
    evaluated_without += scr.Discover(qc.query, qc.key_columns, without)
                             .stats.tables_evaluated;
  }
  EXPECT_LE(evaluated_with, evaluated_without);
}

TEST(ScrTest, PrecisionIsTrueFpRate) {
  // With no filter, SCR's precision is the raw TP share of fetched rows —
  // the denominator the paper's FP-rate discussion uses.
  World world = MakeWorld(19);
  ScrSearch scr(&world.corpus, world.index.get());
  DiscoveryOptions options;
  options.k = 5;
  const QueryCase& qc = world.queries[0];
  DiscoveryResult result = scr.Discover(qc.query, qc.key_columns, options);
  const DiscoveryStats& s = result.stats;
  EXPECT_EQ(s.rows_true_positive + s.FalsePositiveRows(),
            s.rows_sent_to_verification);
  EXPECT_LE(s.Precision(), 1.0);
}

}  // namespace
}  // namespace mate
