// End-to-end agreement properties across systems and against brute force:
//   * MATE == SCR == MCR on top-k scores (they are all exact).
//   * MATE's reported joinability equals BruteForceJoinability per table.
//   * Planted tables are found with at least their planted joinability.
// Parameterized over hash family and hash size: the filter must never
// change results, only speed.

#include <gtest/gtest.h>

#include <tuple>

#include "baselines/mcr.h"
#include "baselines/scr.h"
#include "core/mate.h"
#include "index/index_builder.h"
#include "workload/generator.h"
#include "workload/query_gen.h"

namespace mate {
namespace {

struct E2eWorld {
  Corpus corpus;
  std::vector<QueryCase> queries;
};

E2eWorld MakeWorld(uint64_t seed) {
  E2eWorld world;
  Vocabulary vocab = Vocabulary::Generate(250, Vocabulary::Style::kMixed,
                                          seed ^ 0xABC);
  CorpusSpec spec;
  spec.num_tables = 30;
  spec.min_columns = 2;
  spec.max_columns = 5;
  spec.min_rows = 3;
  spec.max_rows = 12;
  spec.seed = seed;
  world.corpus = GenerateCorpus(spec, vocab);
  QuerySetSpec qspec;
  qspec.num_queries = 4;
  qspec.query_rows = 20;
  qspec.query_columns = 4;
  qspec.key_size = 2;
  qspec.planted_tables = 5;
  qspec.seed = seed + 1;
  world.queries = GenerateQueries(&world.corpus, vocab, qspec);
  return world;
}

class DiscoveryE2eTest
    : public testing::TestWithParam<std::tuple<HashFamily, size_t>> {};

TEST_P(DiscoveryE2eTest, SystemsAgreeAndMatchBruteForce) {
  auto [family, bits] = GetParam();
  E2eWorld world = MakeWorld(911);
  IndexBuildOptions options;
  options.hash_family = family;
  options.hash_bits = bits;
  auto index = BuildIndex(world.corpus, options);
  ASSERT_TRUE(index.ok());

  MateSearch mate(&world.corpus, index->get());
  ScrSearch scr(&world.corpus, index->get());
  McrSearch mcr(&world.corpus, index->get());
  DiscoveryOptions dopts;
  dopts.k = 5;

  for (const QueryCase& qc : world.queries) {
    DiscoveryResult rm = mate.Discover(qc.query, qc.key_columns, dopts);
    DiscoveryResult rs = scr.Discover(qc.query, qc.key_columns, dopts);
    DiscoveryResult rc = mcr.Discover(qc.query, qc.key_columns, dopts);

    ASSERT_EQ(rm.top_k.size(), rs.top_k.size());
    ASSERT_EQ(rm.top_k.size(), rc.top_k.size());
    for (size_t i = 0; i < rm.top_k.size(); ++i) {
      EXPECT_EQ(rm.top_k[i].table_id, rs.top_k[i].table_id) << i;
      EXPECT_EQ(rm.top_k[i].joinability, rs.top_k[i].joinability) << i;
      EXPECT_EQ(rm.top_k[i].table_id, rc.top_k[i].table_id) << i;
      EXPECT_EQ(rm.top_k[i].joinability, rc.top_k[i].joinability) << i;
    }

    // MATE's scores are exact: verify against brute force per table.
    for (const TableResult& tr : rm.top_k) {
      BruteForceResult brute = BruteForceJoinability(
          qc.query, qc.key_columns, world.corpus.table(tr.table_id));
      EXPECT_EQ(tr.joinability, brute.joinability)
          << "table " << tr.table_id;
    }
  }
}

std::string E2eName(
    const testing::TestParamInfo<std::tuple<HashFamily, size_t>>& info) {
  return std::string(HashFamilyName(std::get<0>(info.param))) + "_" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSizes, DiscoveryE2eTest,
    testing::Combine(testing::ValuesIn(AllHashFamilies()),
                     testing::Values(size_t{128}, size_t{512})),
    E2eName);

TEST(DiscoveryE2eRankingTest, TopKIsGloballyCorrect) {
  // MATE's top-k must equal the brute-force ranking over *all* corpus
  // tables (scores compared; ties allowed to differ in id only if scores
  // tie — our tie-break makes even ids deterministic).
  E2eWorld world = MakeWorld(313);
  auto index = BuildIndex(world.corpus, IndexBuildOptions{});
  ASSERT_TRUE(index.ok());
  MateSearch mate(&world.corpus, index->get());
  DiscoveryOptions dopts;
  dopts.k = 6;

  for (const QueryCase& qc : world.queries) {
    DiscoveryResult result = mate.Discover(qc.query, qc.key_columns, dopts);

    std::vector<std::pair<int64_t, TableId>> all;  // (-j, id)
    for (TableId t = 0; t < world.corpus.NumTables(); ++t) {
      int64_t j = BruteForceJoinability(qc.query, qc.key_columns,
                                        world.corpus.table(t))
                      .joinability;
      if (j > 0) all.emplace_back(-j, t);
    }
    std::sort(all.begin(), all.end());
    size_t expected = std::min<size_t>(all.size(), 6);
    ASSERT_EQ(result.top_k.size(), expected);
    for (size_t i = 0; i < expected; ++i) {
      EXPECT_EQ(result.top_k[i].joinability, -all[i].first) << i;
      EXPECT_EQ(result.top_k[i].table_id, all[i].second) << i;
    }
  }
}

TEST(DiscoveryE2eRankingTest, PlantedTablesAreDiscovered) {
  E2eWorld world = MakeWorld(555);
  auto index = BuildIndex(world.corpus, IndexBuildOptions{});
  ASSERT_TRUE(index.ok());
  MateSearch mate(&world.corpus, index->get());
  DiscoveryOptions dopts;
  dopts.k = 5;
  for (const QueryCase& qc : world.queries) {
    ASSERT_FALSE(qc.planted.empty());
    DiscoveryResult result = mate.Discover(qc.query, qc.key_columns, dopts);
    bool found = false;
    for (const TableResult& tr : result.top_k) {
      if (tr.table_id == qc.planted[0].first) {
        found = true;
        EXPECT_GE(tr.joinability,
                  static_cast<int64_t>(qc.planted[0].second));
      }
    }
    EXPECT_TRUE(found) << "most-planted table missing from top-k";
  }
}

TEST(DiscoveryE2eRankingTest, ThreeColumnKeysMatchBruteForce) {
  Vocabulary vocab = Vocabulary::Generate(150, Vocabulary::Style::kMixed, 77);
  CorpusSpec spec;
  spec.num_tables = 20;
  spec.min_columns = 3;
  spec.max_columns = 6;
  spec.min_rows = 3;
  spec.max_rows = 10;
  spec.seed = 78;
  Corpus corpus = GenerateCorpus(spec, vocab);
  QuerySetSpec qspec;
  qspec.num_queries = 3;
  qspec.query_rows = 15;
  qspec.query_columns = 5;
  qspec.key_size = 3;
  qspec.planted_tables = 4;
  qspec.seed = 79;
  std::vector<QueryCase> queries = GenerateQueries(&corpus, vocab, qspec);

  auto index = BuildIndex(corpus, IndexBuildOptions{});
  ASSERT_TRUE(index.ok());
  MateSearch mate(&corpus, index->get());
  DiscoveryOptions dopts;
  dopts.k = 4;
  for (const QueryCase& qc : queries) {
    DiscoveryResult result = mate.Discover(qc.query, qc.key_columns, dopts);
    for (const TableResult& tr : result.top_k) {
      EXPECT_EQ(tr.joinability,
                BruteForceJoinability(qc.query, qc.key_columns,
                                      corpus.table(tr.table_id))
                    .joinability);
    }
  }
}

TEST(DiscoveryE2eRankingTest, DeletedRowsAreInvisibleToDiscovery) {
  E2eWorld world = MakeWorld(404);
  auto index = BuildIndex(world.corpus, IndexBuildOptions{});
  ASSERT_TRUE(index.ok());

  // Tombstone a third of the rows of every table, via the §5.4 update path.
  Rng rng(405);
  for (TableId t = 0; t < world.corpus.NumTables(); ++t) {
    Table* table = world.corpus.mutable_table(t);
    for (RowId r = 0; r < table->NumRows(); ++r) {
      if (table->NumLiveRows() > 1 && rng.Bernoulli(0.33)) {
        ASSERT_TRUE((*index)->DeleteRow(world.corpus, t, r).ok());
        ASSERT_TRUE(table->DeleteRow(r).ok());
      }
    }
  }

  MateSearch mate(&world.corpus, index->get());
  DiscoveryOptions dopts;
  dopts.k = 5;
  for (const QueryCase& qc : world.queries) {
    DiscoveryResult result = mate.Discover(qc.query, qc.key_columns, dopts);
    for (const TableResult& tr : result.top_k) {
      // Brute force skips tombstoned rows, so agreement proves the index
      // no longer surfaces them.
      EXPECT_EQ(tr.joinability,
                BruteForceJoinability(qc.query, qc.key_columns,
                                      world.corpus.table(tr.table_id))
                    .joinability);
    }
  }
}

TEST(DiscoveryE2eRankingTest, MaintainedIndexDiscoversNewTables) {
  E2eWorld world = MakeWorld(606);
  auto index = BuildIndex(world.corpus, IndexBuildOptions{});
  ASSERT_TRUE(index.ok());
  const QueryCase& qc = world.queries[0];

  // Insert a fresh table holding every query combo: it must become top-1.
  Table super("super_joinable");
  for (size_t c = 0; c < qc.key_columns.size() + 1; ++c) {
    super.AddColumn("c" + std::to_string(c));
  }
  auto combos = ExtractKeyCombos(qc.query, qc.key_columns);
  for (const auto& combo : combos) {
    std::vector<std::string> cells(combo);
    cells.push_back("payload");
    (void)super.AppendRow(std::move(cells));
  }
  TableId new_id = world.corpus.AddTable(std::move(super));
  ASSERT_TRUE((*index)->InsertTable(world.corpus, new_id).ok());

  MateSearch mate(&world.corpus, index->get());
  DiscoveryOptions dopts;
  dopts.k = 3;
  DiscoveryResult result = mate.Discover(qc.query, qc.key_columns, dopts);
  ASSERT_FALSE(result.top_k.empty());
  EXPECT_EQ(result.top_k[0].table_id, new_id);
  EXPECT_EQ(result.top_k[0].joinability,
            static_cast<int64_t>(combos.size()));
}

TEST(DiscoveryE2eRankingTest, DeterministicAcrossRuns) {
  E2eWorld world = MakeWorld(777);
  auto index = BuildIndex(world.corpus, IndexBuildOptions{});
  ASSERT_TRUE(index.ok());
  MateSearch mate(&world.corpus, index->get());
  DiscoveryOptions dopts;
  dopts.k = 4;
  for (const QueryCase& qc : world.queries) {
    DiscoveryResult a = mate.Discover(qc.query, qc.key_columns, dopts);
    DiscoveryResult b = mate.Discover(qc.query, qc.key_columns, dopts);
    ASSERT_EQ(a.top_k.size(), b.top_k.size());
    for (size_t i = 0; i < a.top_k.size(); ++i) {
      EXPECT_EQ(a.top_k[i].table_id, b.top_k[i].table_id);
      EXPECT_EQ(a.top_k[i].joinability, b.top_k[i].joinability);
    }
  }
}

}  // namespace
}  // namespace mate
