#include "util/char_frequency.h"

#include <gtest/gtest.h>

namespace mate {
namespace {

TEST(NormalizeCharTest, LettersFoldCase) {
  EXPECT_EQ(NormalizeChar('a'), 0);
  EXPECT_EQ(NormalizeChar('A'), 0);
  EXPECT_EQ(NormalizeChar('z'), 25);
  EXPECT_EQ(NormalizeChar('Z'), 25);
}

TEST(NormalizeCharTest, Digits) {
  EXPECT_EQ(NormalizeChar('0'), 26);
  EXPECT_EQ(NormalizeChar('9'), 35);
}

TEST(NormalizeCharTest, EverythingElseIsTheBucket) {
  for (char c : {' ', '-', '.', '_', '\t', '\xC3'}) {
    EXPECT_EQ(NormalizeChar(c), kOtherCharId) << static_cast<int>(c);
  }
}

TEST(NormalizeCharTest, AlphabetSymbolRoundTrip) {
  for (int id = 0; id < kAlphabetSize; ++id) {
    if (id == kOtherCharId) {
      EXPECT_EQ(AlphabetSymbol(id), '*');
    } else {
      EXPECT_EQ(NormalizeChar(AlphabetSymbol(id)), id);
    }
  }
}

TEST(CharFrequencyTest, EnglishRanksCommonLettersFirst) {
  const CharFrequencyTable& t = CharFrequencyTable::English();
  // 'e' is the most frequent letter; 'z' among the rarest.
  EXPECT_EQ(t.rank(NormalizeChar('e')), 0);
  EXPECT_GT(t.rank(NormalizeChar('z')), t.rank(NormalizeChar('e')));
  EXPECT_GT(t.rank(NormalizeChar('q')), t.rank(NormalizeChar('t')));
}

TEST(CharFrequencyTest, RarerPrefersLowFrequency) {
  const CharFrequencyTable& t = CharFrequencyTable::English();
  EXPECT_TRUE(t.Rarer(NormalizeChar('z'), NormalizeChar('e')));
  EXPECT_FALSE(t.Rarer(NormalizeChar('e'), NormalizeChar('z')));
}

TEST(CharFrequencyTest, RarerBreaksTiesLexicographically) {
  // All digits share one frequency in the English table; smaller id wins.
  const CharFrequencyTable& t = CharFrequencyTable::English();
  EXPECT_TRUE(t.Rarer(NormalizeChar('3'), NormalizeChar('7')));
  EXPECT_FALSE(t.Rarer(NormalizeChar('7'), NormalizeChar('3')));
}

TEST(CharFrequencyTest, CountCharacters) {
  std::array<uint64_t, kAlphabetSize> counts{};
  CharFrequencyTable::CountCharacters("ab1 a", &counts);
  EXPECT_EQ(counts[NormalizeChar('a')], 2u);
  EXPECT_EQ(counts[NormalizeChar('b')], 1u);
  EXPECT_EQ(counts[NormalizeChar('1')], 1u);
  EXPECT_EQ(counts[kOtherCharId], 1u);
}

TEST(CharFrequencyTest, FromCountsRanksByObservedFrequency) {
  std::array<uint64_t, kAlphabetSize> counts{};
  counts[NormalizeChar('x')] = 1000;  // x is common in this "corpus"
  counts[NormalizeChar('e')] = 1;     // e is rare
  CharFrequencyTable t = CharFrequencyTable::FromCounts(counts);
  EXPECT_EQ(t.rank(NormalizeChar('x')), 0);
  EXPECT_TRUE(t.Rarer(NormalizeChar('e'), NormalizeChar('x')));
}

TEST(CharFrequencyTest, FromCountsHandlesZeroTotal) {
  std::array<uint64_t, kAlphabetSize> counts{};
  CharFrequencyTable t = CharFrequencyTable::FromCounts(counts);
  // All symbols equally (epsilon) frequent; ranks are total via id order.
  EXPECT_TRUE(t.Rarer(0, 1));
  EXPECT_FALSE(t.Rarer(1, 0));
}

TEST(CharFrequencyTest, RanksAreAPermutation) {
  const CharFrequencyTable& t = CharFrequencyTable::English();
  std::array<bool, kAlphabetSize> seen{};
  for (int id = 0; id < kAlphabetSize; ++id) {
    int r = t.rank(id);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, kAlphabetSize);
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
}

}  // namespace
}  // namespace mate
