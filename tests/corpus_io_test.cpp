#include "storage/corpus_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "storage/table_store.h"

namespace mate {
namespace {

Corpus MakeCorpus() {
  Corpus corpus;
  Table t1("sensors");
  t1.AddColumn("time");
  t1.AddColumn("city");
  (void)t1.AppendRow({"2024-01-01", "berlin"});
  (void)t1.AppendRow({"2024-01-02", "hannover"});
  (void)t1.AppendRow({"2024-01-03", "munich"});
  EXPECT_TRUE(t1.DeleteRow(1).ok());
  corpus.AddTable(std::move(t1));

  Table t2("empty table");
  t2.AddColumn("only column, with comma \"and quotes\"");
  corpus.AddTable(std::move(t2));
  return corpus;
}

void ExpectCorporaEqual(const Corpus& a, const Corpus& b) {
  ASSERT_EQ(a.NumTables(), b.NumTables());
  for (TableId t = 0; t < a.NumTables(); ++t) {
    const Table& ta = a.table(t);
    const Table& tb = b.table(t);
    EXPECT_EQ(ta.name(), tb.name());
    ASSERT_EQ(ta.NumColumns(), tb.NumColumns());
    ASSERT_EQ(ta.NumRows(), tb.NumRows());
    EXPECT_EQ(ta.NumLiveRows(), tb.NumLiveRows());
    for (ColumnId c = 0; c < ta.NumColumns(); ++c) {
      EXPECT_EQ(ta.column_name(c), tb.column_name(c));
      for (RowId r = 0; r < ta.NumRows(); ++r) {
        EXPECT_EQ(ta.cell(r, c), tb.cell(r, c));
        EXPECT_EQ(ta.IsRowDeleted(r), tb.IsRowDeleted(r));
      }
    }
  }
}

TEST(CorpusIoTest, SerializeDeserializeRoundTrip) {
  Corpus corpus = MakeCorpus();
  std::string bytes;
  SerializeCorpus(corpus, &bytes);
  auto loaded = DeserializeCorpus(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectCorporaEqual(corpus, *loaded);
}

TEST(CorpusIoTest, RejectsBadMagic) {
  std::string bytes = "NOTMAGIC-and-more-bytes";
  auto loaded = DeserializeCorpus(bytes);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST(CorpusIoTest, RejectsTruncation) {
  Corpus corpus = MakeCorpus();
  std::string bytes;
  SerializeCorpus(corpus, &bytes);
  for (size_t cut : {bytes.size() / 4, bytes.size() / 2, bytes.size() - 1}) {
    auto loaded = DeserializeCorpus(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(loaded.ok()) << "cut=" << cut;
  }
}

TEST(CorpusIoTest, FileRoundTrip) {
  Corpus corpus = MakeCorpus();
  std::string path = testing::TempDir() + "/mate_corpus_io_test.bin";
  ASSERT_TRUE(SaveCorpus(corpus, path).ok());
  auto loaded = LoadCorpus(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectCorporaEqual(corpus, *loaded);
  std::remove(path.c_str());
}

TEST(CorpusIoTest, LoadMissingFileIsIOError) {
  auto loaded = LoadCorpus("/nonexistent/dir/corpus.bin");
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
}

TEST(CorpusIoTest, EmptyCorpusRoundTrip) {
  Corpus corpus;
  std::string bytes;
  SerializeCorpus(corpus, &bytes);
  auto loaded = DeserializeCorpus(bytes);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumTables(), 0u);
}

TEST(CorpusIoTest, StatsRoundTripThroughTheHeader) {
  Corpus corpus = MakeCorpus();
  const CorpusStats stats = corpus.ComputeStats();
  std::string bytes;
  SerializeCorpus(corpus, stats, &bytes);
  CorpusStats loaded_stats;
  bool present = false;
  auto loaded = DeserializeCorpus(bytes, &loaded_stats, &present);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(present);
  EXPECT_TRUE(loaded_stats == stats);
  ExpectCorporaEqual(corpus, *loaded);

  // The stats-less writer marks them absent (all-zero payload).
  SerializeCorpus(corpus, &bytes);
  present = true;
  auto plain = DeserializeCorpus(bytes, &loaded_stats, &present);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(present);
}

TEST(CorpusIoTest, LazyOpenRoundTripsAndServesStats) {
  Corpus corpus = MakeCorpus();
  const CorpusStats stats = corpus.ComputeStats();
  const std::string path = testing::TempDir() + "/mate_corpus_io_lazy.bin";
  ASSERT_TRUE(SaveCorpus(corpus, stats, path).ok());
  CorpusStats loaded_stats;
  bool present = false;
  auto lazy = OpenCorpusLazy(path, &loaded_stats, &present);
  ASSERT_TRUE(lazy.ok()) << lazy.status().ToString();
  EXPECT_TRUE(present);
  EXPECT_TRUE(loaded_stats == stats);
  EXPECT_FALSE(lazy->fully_resident());  // header only so far
  ExpectCorporaEqual(corpus, *lazy);     // materializes on access
  EXPECT_TRUE(lazy->fully_resident());
  std::remove(path.c_str());
}

TEST(CorpusIoTest, V1WriterRoundTripsThroughEveryReader) {
  Corpus corpus = MakeCorpus();
  std::string v1;
  SerializeCorpusV1(corpus, &v1);
  auto eager = DeserializeCorpus(v1);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  ExpectCorporaEqual(corpus, *eager);
  EXPECT_TRUE(CorporaEqual(corpus, *eager));
}

TEST(CorpusIoTest, V2WriterRoundTripsThroughEveryReader) {
  // v2 images (no per-column extents) must keep loading everywhere: eagerly
  // with their header stats, and lazily — where columnar materialization
  // degrades to a whole-table parse instead of failing.
  Corpus corpus = MakeCorpus();
  const CorpusStats stats = corpus.ComputeStats();
  std::string v2;
  SerializeCorpusV2(corpus, stats, &v2);

  CorpusStats eager_stats;
  bool present = false;
  auto eager = DeserializeCorpus(v2, &eager_stats, &present);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  EXPECT_TRUE(present);
  EXPECT_TRUE(eager_stats == stats);
  ExpectCorporaEqual(corpus, *eager);

  const std::string path = testing::TempDir() + "/mate_corpus_io_v2.bin";
  ASSERT_TRUE(WriteFileAtomic(path, v2).ok());
  auto lazy = OpenCorpusLazy(path);
  ASSERT_TRUE(lazy.ok()) << lazy.status().ToString();
  EXPECT_FALSE(lazy->fully_resident());
  MaterializeOutcome outcome;
  (void)lazy->MaterializeColumns(0, {1}, &outcome);
  EXPECT_EQ(outcome.bytes_parsed, lazy->table_cell_bytes(0));
  EXPECT_EQ(lazy->residency().partial_tables, 0u);
  ExpectCorporaEqual(corpus, *lazy);
  std::remove(path.c_str());
}

TEST(CorpusIoTest, V3LazyColumnarParsesOnlyTheRequestedColumn) {
  // The per-column extents round-trip: a lazy open of the current format
  // serves one column of a table for exactly that column's bytes, and a
  // later full access completes the remaining columns bit-identically.
  Corpus corpus = MakeCorpus();
  const std::string path = testing::TempDir() + "/mate_corpus_io_v3col.bin";
  ASSERT_TRUE(SaveCorpus(corpus, corpus.ComputeStats(), path).ok());
  auto lazy = OpenCorpusLazy(path);
  ASSERT_TRUE(lazy.ok()) << lazy.status().ToString();
  MaterializeOutcome outcome;
  const Table& partial = lazy->MaterializeColumns(0, {1}, &outcome);
  EXPECT_EQ(outcome.bytes_parsed, TableColumnCellBytes(corpus.table(0), 1));
  EXPECT_LT(outcome.bytes_parsed, lazy->table_cell_bytes(0));
  EXPECT_EQ(lazy->residency().partial_tables, 1u);
  for (RowId r = 0; r < partial.NumRows(); ++r) {
    EXPECT_EQ(partial.cell(r, 1), corpus.table(0).cell(r, 1));
  }
  ExpectCorporaEqual(corpus, *lazy);  // full access completes the rest
  EXPECT_EQ(lazy->residency().partial_tables, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mate
