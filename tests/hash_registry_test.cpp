#include "hash/hash_registry.h"

#include <gtest/gtest.h>

#include "hash/bloom.h"
#include "hash/xash.h"

namespace mate {
namespace {

TEST(HashRegistryTest, AllFamiliesConstruct) {
  for (HashFamily family : AllHashFamilies()) {
    for (size_t bits : {size_t{128}, size_t{256}, size_t{512}}) {
      auto hash = MakeRowHash(family, bits, nullptr);
      ASSERT_NE(hash, nullptr) << HashFamilyName(family);
      EXPECT_EQ(hash->hash_bits(), bits);
      EXPECT_EQ(hash->Name(), HashFamilyName(family));
    }
  }
}

TEST(HashRegistryTest, NameParseRoundTrip) {
  for (HashFamily family : AllHashFamilies()) {
    auto parsed = ParseHashFamily(HashFamilyName(family));
    ASSERT_TRUE(parsed.ok()) << HashFamilyName(family);
    EXPECT_EQ(*parsed, family);
  }
}

TEST(HashRegistryTest, ParseRejectsUnknown) {
  EXPECT_FALSE(ParseHashFamily("NotAHash").ok());
  EXPECT_FALSE(ParseHashFamily("").ok());
  EXPECT_FALSE(ParseHashFamily("xash").ok());  // case-sensitive
}

TEST(HashRegistryTest, TableOrderMatchesPaperColumns) {
  const auto& all = AllHashFamilies();
  ASSERT_EQ(all.size(), 8u);
  EXPECT_EQ(all.front(), HashFamily::kMd5);
  EXPECT_EQ(all.back(), HashFamily::kXash);
}

TEST(HashRegistryTest, StatsParameterizeBloomAndXash) {
  CorpusStats stats;
  stats.num_unique_values = 1'000'000;
  stats.avg_columns_per_table = 26.0;  // the paper's OD V
  stats.num_cells = 10'000'000;

  auto bloom = MakeRowHash(HashFamily::kBloom, 128, &stats);
  auto* bf = dynamic_cast<BloomRowHash*>(bloom.get());
  ASSERT_NE(bf, nullptr);
  EXPECT_EQ(bf->num_hashes(), OptimalBloomHashCount(128, 26.0));

  auto xash = MakeRowHash(HashFamily::kXash, 128, &stats);
  auto* x = dynamic_cast<Xash*>(xash.get());
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->alpha(), 6);  // floored Eq. 5 at 1M uniques
}

TEST(HashRegistryTest, NoStatsUsesPaperDefaults) {
  auto bloom = MakeRowHash(HashFamily::kBloom, 128, nullptr);
  auto* bf = dynamic_cast<BloomRowHash*>(bloom.get());
  ASSERT_NE(bf, nullptr);
  EXPECT_EQ(bf->num_hashes(), OptimalBloomHashCount(128, 5.0));  // V=5

  auto xash = MakeRowHash(HashFamily::kXash, 128, nullptr);
  auto* x = dynamic_cast<Xash*>(xash.get());
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->alpha(), 6);  // 700M uniques default
}

}  // namespace
}  // namespace mate
