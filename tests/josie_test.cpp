#include "baselines/josie.h"

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "workload/generator.h"
#include "workload/query_gen.h"

namespace mate {
namespace {

Corpus MakeCorpus() {
  Corpus corpus;
  Table t1("high_overlap");
  t1.AddColumn("name");
  t1.AddColumn("country");
  (void)t1.AppendRow({"alpha", "US"});
  (void)t1.AppendRow({"beta", "UK"});
  (void)t1.AppendRow({"gamma", "DE"});
  (void)t1.AppendRow({"delta", "FR"});
  corpus.AddTable(std::move(t1));

  Table t2("low_overlap");
  t2.AddColumn("name");
  t2.AddColumn("country");
  (void)t2.AppendRow({"alpha", "US"});
  (void)t2.AppendRow({"zeta", "JP"});
  corpus.AddTable(std::move(t2));

  Table t3("no_overlap");
  t3.AddColumn("x");
  (void)t3.AppendRow({"unrelated"});
  corpus.AddTable(std::move(t3));
  return corpus;
}

TEST(JosieIndexTest, SetsAreDistinctValueColumns) {
  Corpus corpus = MakeCorpus();
  JosieIndex josie = JosieIndex::Build(corpus);
  // 2 + 2 + 1 columns with non-empty distinct sets.
  EXPECT_EQ(josie.NumSets(), 5u);
  EXPECT_GT(josie.MemoryBytes(), 0u);
}

TEST(JosieIndexTest, TopSetsRanksByOverlap) {
  Corpus corpus = MakeCorpus();
  JosieIndex josie = JosieIndex::Build(corpus);
  std::vector<std::string> tokens = {"alpha", "beta", "gamma"};
  auto top = josie.TopSets(tokens, 10);
  ASSERT_GE(top.size(), 2u);
  // Best set: t1's name column with overlap 3.
  EXPECT_EQ(josie.set(top[0].set_id).table_id, 0u);
  EXPECT_EQ(josie.set(top[0].set_id).column_id, 0u);
  EXPECT_EQ(top[0].overlap, 3);
  // Second: t2's name column with overlap 1.
  EXPECT_EQ(josie.set(top[1].set_id).table_id, 1u);
  EXPECT_EQ(top[1].overlap, 1);
}

TEST(JosieIndexTest, DuplicateTokensCountOnce) {
  Corpus corpus = MakeCorpus();
  JosieIndex josie = JosieIndex::Build(corpus);
  auto top = josie.TopSets({"alpha", "alpha", "alpha"}, 10);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].overlap, 1);
}

TEST(JosieIndexTest, ZeroOverlapSetsAreAbsent) {
  Corpus corpus = MakeCorpus();
  JosieIndex josie = JosieIndex::Build(corpus);
  auto top = josie.TopSets({"alpha"}, 10);
  for (const auto& scored : top) {
    EXPECT_GT(scored.overlap, 0);
  }
  EXPECT_TRUE(josie.TopSets({"never-present"}, 10).empty());
}

TEST(JosieIndexTest, TopTablesDeduplicates) {
  Corpus corpus = MakeCorpus();
  JosieIndex josie = JosieIndex::Build(corpus);
  // Tokens hitting both columns of t1: the table appears once.
  auto tables = josie.TopTables({"alpha", "us", "uk"}, 10);
  ASSERT_FALSE(tables.empty());
  EXPECT_EQ(tables[0], 0u);
  for (size_t i = 0; i < tables.size(); ++i) {
    for (size_t j = i + 1; j < tables.size(); ++j) {
      EXPECT_NE(tables[i], tables[j]);
    }
  }
}

class JosieSearchTest : public testing::Test {
 protected:
  void SetUp() override {
    Vocabulary vocab = Vocabulary::Generate(400, Vocabulary::Style::kMixed, 5);
    CorpusSpec spec;
    spec.num_tables = 40;
    spec.seed = 17;
    corpus_ = GenerateCorpus(spec, vocab);
    QuerySetSpec qspec;
    qspec.num_queries = 3;
    qspec.query_rows = 30;
    qspec.key_size = 2;
    qspec.planted_tables = 6;
    qspec.seed = 23;
    queries_ = GenerateQueries(&corpus_, vocab, qspec);
    auto index = BuildIndex(corpus_, IndexBuildOptions{});
    ASSERT_TRUE(index.ok());
    index_ = std::move(*index);
    josie_ = std::make_unique<JosieIndex>(JosieIndex::Build(corpus_));
  }

  Corpus corpus_;
  std::unique_ptr<InvertedIndex> index_;
  std::unique_ptr<JosieIndex> josie_;
  std::vector<QueryCase> queries_;
};

TEST_F(JosieSearchTest, ScrJosieFindsPlantedTables) {
  ScrJosieSearch search(&corpus_, index_.get(), josie_.get());
  JosieOptions options;
  options.k = 5;
  for (const QueryCase& qc : queries_) {
    DiscoveryResult result = search.Discover(qc.query, qc.key_columns,
                                             options);
    ASSERT_FALSE(result.top_k.empty());
    // The most-planted table must be discoverable with joinability at least
    // its planted combo count.
    ASSERT_FALSE(qc.planted.empty());
    bool found = false;
    for (const TableResult& tr : result.top_k) {
      if (tr.table_id == qc.planted[0].first) {
        found = true;
        EXPECT_GE(tr.joinability,
                  static_cast<int64_t>(qc.planted[0].second));
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(JosieSearchTest, McrJosieFindsPlantedTables) {
  McrJosieSearch search(&corpus_, index_.get(), josie_.get());
  JosieOptions options;
  options.k = 5;
  for (const QueryCase& qc : queries_) {
    DiscoveryResult result = search.Discover(qc.query, qc.key_columns,
                                             options);
    ASSERT_FALSE(result.top_k.empty());
    bool found = false;
    for (const TableResult& tr : result.top_k) {
      if (tr.table_id == qc.planted[0].first) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(JosieSearchTest, EmptyKeyReturnsNothing) {
  ScrJosieSearch scr_josie(&corpus_, index_.get(), josie_.get());
  McrJosieSearch mcr_josie(&corpus_, index_.get(), josie_.get());
  JosieOptions options;
  EXPECT_TRUE(
      scr_josie.Discover(queries_[0].query, {}, options).top_k.empty());
  EXPECT_TRUE(
      mcr_josie.Discover(queries_[0].query, {}, options).top_k.empty());
}

}  // namespace
}  // namespace mate
