#include "util/zipf.h"

#include <gtest/gtest.h>

#include <vector>

namespace mate {
namespace {

TEST(ZipfTest, SamplesInRange) {
  ZipfDistribution zipf(100, 1.0);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Sample(&rng), 100u);
  }
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(500, 1.2);
  double total = 0.0;
  for (size_t k = 0; k < 500; ++k) total += zipf.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroIsMostLikely) {
  ZipfDistribution zipf(1000, 1.05);
  EXPECT_GT(zipf.Pmf(0), zipf.Pmf(1));
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(10));
  EXPECT_GT(zipf.Pmf(10), zipf.Pmf(999));
}

TEST(ZipfTest, EmpiricalSkewMatchesPmf) {
  ZipfDistribution zipf(50, 1.0);
  Rng rng(7);
  std::vector<int> counts(50, 0);
  const int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(&rng)];
  // Rank 0 empirical probability within 15% of the analytic pmf.
  double p0 = static_cast<double>(counts[0]) / kSamples;
  EXPECT_NEAR(p0, zipf.Pmf(0), 0.15 * zipf.Pmf(0));
  // Monotone-ish: head much heavier than tail.
  EXPECT_GT(counts[0], counts[49] * 5);
}

TEST(ZipfTest, SZeroIsUniform) {
  ZipfDistribution zipf(10, 0.0);
  for (size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(zipf.Pmf(k), 0.1, 1e-9);
  }
}

TEST(ZipfTest, DeterministicGivenSeed) {
  ZipfDistribution zipf(1000, 1.1);
  Rng rng1(42), rng2(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.Sample(&rng1), zipf.Sample(&rng2));
  }
}

TEST(RngTest, DeterministicStreams) {
  Rng a(5), b(5), c(6);
  bool all_equal = true;
  bool any_diff_seed_diff = false;
  for (int i = 0; i < 50; ++i) {
    uint64_t va = a.NextUint64();
    uint64_t vb = b.NextUint64();
    uint64_t vc = c.NextUint64();
    all_equal = all_equal && (va == vb);
    any_diff_seed_diff = any_diff_seed_diff || (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed_diff);
}

TEST(RngTest, UniformBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(7), 7u);
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, SplitMix64KnownProperties) {
  // SplitMix64 must be deterministic and not map distinct small inputs to
  // equal outputs (sanity, not cryptographic).
  EXPECT_EQ(SplitMix64(1), SplitMix64(1));
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
  EXPECT_NE(SplitMix64(0), 0u);
}

}  // namespace
}  // namespace mate
