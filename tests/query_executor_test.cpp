// Determinism contract of the intra-query executor: `top_k` is
// bit-identical to serial MateSearch::Discover at every shard x thread
// combination, fetch-side counters match serial exactly, and for a fixed
// shard count the full stats are deterministic at any thread count.

#include "core/query_executor.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/mate.h"
#include "core/session.h"
#include "index/index_builder.h"
#include "util/thread_pool.h"

namespace mate {
namespace {

// 40 small tables with heavy joinability ties: table t matches the first
// 1 + (t % 5) query combos, so every joinability level is shared by eight
// tables and the top-k boundary always cuts through a tie (id tie-break).
constexpr size_t kNumTables = 40;

Table MakeQuery() {
  Table q("q");
  q.AddColumn("first");
  q.AddColumn("second");
  for (int i = 0; i < 10; ++i) {
    (void)q.AppendRow({"k" + std::to_string(i), "v" + std::to_string(i)});
  }
  return q;
}

Corpus MakeTieCorpus() {
  Corpus corpus;
  for (size_t t = 0; t < kNumTables; ++t) {
    Table table("t" + std::to_string(t));
    table.AddColumn("a");
    table.AddColumn("b");
    table.AddColumn("c");
    const size_t joinability = 1 + (t % 5);
    for (size_t i = 0; i < joinability; ++i) {
      (void)table.AppendRow({"k" + std::to_string(i),
                             "v" + std::to_string(i),
                             "pad" + std::to_string(t)});
    }
    // Noise rows sharing single values but never a full combo.
    (void)table.AppendRow({"k0", "v9", "noise"});
    (void)table.AppendRow({"own" + std::to_string(t), "z", "noise"});
    corpus.AddTable(std::move(table));
  }
  return corpus;
}

std::unique_ptr<InvertedIndex> Build(const Corpus& corpus) {
  auto index = BuildIndex(corpus, IndexBuildOptions{});
  EXPECT_TRUE(index.ok());
  return std::move(*index);
}

void ExpectSameResult(const DiscoveryResult& expected,
                      const DiscoveryResult& actual,
                      const std::string& label) {
  ASSERT_EQ(expected.top_k.size(), actual.top_k.size()) << label;
  for (size_t i = 0; i < expected.top_k.size(); ++i) {
    EXPECT_EQ(expected.top_k[i].table_id, actual.top_k[i].table_id)
        << label << " rank " << i;
    EXPECT_EQ(expected.top_k[i].joinability, actual.top_k[i].joinability)
        << label << " rank " << i;
    EXPECT_EQ(expected.top_k[i].best_mapping, actual.top_k[i].best_mapping)
        << label << " rank " << i;
  }
}

// Work counters must agree field-by-field (used for the fixed-shard-count,
// varying-thread-count determinism check).
void ExpectSameWorkStats(const DiscoveryStats& a, const DiscoveryStats& b,
                         const std::string& label) {
  EXPECT_EQ(a.pl_items_fetched, b.pl_items_fetched) << label;
  EXPECT_EQ(a.candidate_tables, b.candidate_tables) << label;
  EXPECT_EQ(a.tables_evaluated, b.tables_evaluated) << label;
  EXPECT_EQ(a.tables_pruned_rule1, b.tables_pruned_rule1) << label;
  EXPECT_EQ(a.tables_pruned_rule2, b.tables_pruned_rule2) << label;
  EXPECT_EQ(a.rows_checked, b.rows_checked) << label;
  EXPECT_EQ(a.rows_sent_to_verification, b.rows_sent_to_verification)
      << label;
  EXPECT_EQ(a.rows_true_positive, b.rows_true_positive) << label;
  EXPECT_EQ(a.value_comparisons, b.value_comparisons) << label;
}

TEST(QueryExecutorTest, BitIdenticalAcrossShardAndThreadCounts) {
  const Corpus corpus = MakeTieCorpus();
  const auto index = Build(corpus);
  const Table query = MakeQuery();
  const std::vector<ColumnId> keys = {0, 1};
  QueryExecutor executor(&corpus, index.get());

  for (int k : {1, 7, 100}) {
    DiscoveryOptions options;
    options.k = k;
    const DiscoveryResult serial =
        MateSearch(&corpus, index.get()).Discover(query, keys, options);
    for (size_t shards : {1, 2, 3, 8}) {
      DiscoveryResult at_one_thread;
      for (unsigned threads : {1u, 4u}) {
        ThreadPool pool(threads);
        ExecutorOptions exec;
        exec.intra_query_threads = threads;
        exec.num_shards = shards;
        const DiscoveryResult result =
            executor.Discover(query, keys, options, exec, &pool);
        const std::string label = "k=" + std::to_string(k) + " shards=" +
                                  std::to_string(shards) + " threads=" +
                                  std::to_string(threads);
        ExpectSameResult(serial, result, label);
        // Fetch-side counters match serial at ANY shard count.
        EXPECT_EQ(result.stats.pl_items_fetched,
                  serial.stats.pl_items_fetched)
            << label;
        EXPECT_EQ(result.stats.candidate_tables,
                  serial.stats.candidate_tables)
            << label;
        EXPECT_EQ(result.stats.shards_used, shards) << label;
        // Full work stats match across thread counts at a FIXED shard
        // count (shard outcomes merge in shard order).
        if (threads == 1u) {
          at_one_thread = result;
        } else {
          ExpectSameWorkStats(at_one_thread.stats, result.stats, label);
        }
      }
    }
  }
}

TEST(QueryExecutorTest, ExcludeAndRestrictSurviveSharding) {
  const Corpus corpus = MakeTieCorpus();
  const auto index = Build(corpus);
  const Table query = MakeQuery();
  const std::vector<ColumnId> keys = {0, 1};
  QueryExecutor executor(&corpus, index.get());

  DiscoveryOptions options;
  options.k = 5;
  options.exclude_tables = {4, 9, 14};
  options.restrict_tables = {2, 4, 9, 14, 19, 24, 29, 34, 39};
  const DiscoveryResult serial =
      MateSearch(&corpus, index.get()).Discover(query, keys, options);
  for (size_t shards : {2, 8}) {
    ThreadPool pool(4);
    ExecutorOptions exec;
    exec.intra_query_threads = 4;
    exec.num_shards = shards;
    ExpectSameResult(serial,
                     executor.Discover(query, keys, options, exec, &pool),
                     "shards=" + std::to_string(shards));
  }
}

TEST(QueryExecutorTest, EmptyCandidateSet) {
  const Corpus corpus = MakeTieCorpus();
  const auto index = Build(corpus);
  Table query("q");
  query.AddColumn("a");
  query.AddColumn("b");
  (void)query.AppendRow({"absent1", "absent2"});
  const std::vector<ColumnId> keys = {0, 1};
  QueryExecutor executor(&corpus, index.get());

  DiscoveryOptions options;
  options.k = 3;
  for (size_t shards : {1, 2, 3, 8}) {
    ThreadPool pool(4);
    ExecutorOptions exec;
    exec.intra_query_threads = 4;
    exec.num_shards = shards;
    const DiscoveryResult result =
        executor.Discover(query, keys, options, exec, &pool);
    EXPECT_TRUE(result.top_k.empty()) << "shards=" << shards;
    EXPECT_EQ(result.stats.candidate_tables, 0u) << "shards=" << shards;
    EXPECT_EQ(result.stats.shards_used, shards) << "shards=" << shards;
  }
}

TEST(QueryExecutorTest, SingletonCandidateSet) {
  const Corpus corpus = MakeTieCorpus();
  const auto index = Build(corpus);
  Table query("q");
  query.AddColumn("a");
  query.AddColumn("b");
  // "own7" exists only in table 7 (paired with "z").
  (void)query.AppendRow({"own7", "z"});
  const std::vector<ColumnId> keys = {0, 1};
  QueryExecutor executor(&corpus, index.get());

  DiscoveryOptions options;
  options.k = 3;
  const DiscoveryResult serial =
      MateSearch(&corpus, index.get()).Discover(query, keys, options);
  ASSERT_EQ(serial.top_k.size(), 1u);
  EXPECT_EQ(serial.top_k[0].table_id, 7u);
  for (size_t shards : {1, 2, 3, 8}) {
    ThreadPool pool(4);
    ExecutorOptions exec;
    exec.intra_query_threads = 4;
    exec.num_shards = shards;
    ExpectSameResult(serial,
                     executor.Discover(query, keys, options, exec, &pool),
                     "shards=" + std::to_string(shards));
  }
}

TEST(QueryExecutorTest, ShardCountCappedByCorpusTables) {
  Corpus corpus;
  for (int t = 0; t < 2; ++t) {
    Table table("t" + std::to_string(t));
    table.AddColumn("a");
    table.AddColumn("b");
    (void)table.AppendRow({"k1", "v1"});
    corpus.AddTable(std::move(table));
  }
  const auto index = Build(corpus);
  Table query("q");
  query.AddColumn("a");
  query.AddColumn("b");
  (void)query.AppendRow({"k1", "v1"});
  QueryExecutor executor(&corpus, index.get());

  ThreadPool pool(4);
  ExecutorOptions exec;
  exec.intra_query_threads = 4;
  exec.num_shards = 8;
  DiscoveryOptions options;
  const DiscoveryResult result =
      executor.Discover(query, {0, 1}, options, exec, &pool);
  EXPECT_EQ(result.stats.shards_used, 2u);
  EXPECT_EQ(result.top_k.size(), 2u);
}

TEST(QueryExecutorTest, AutoModeKeepsSmallQueriesSerial) {
  const Corpus corpus = MakeTieCorpus();
  const auto index = Build(corpus);
  const Table query = MakeQuery();
  QueryExecutor executor(&corpus, index.get());

  ThreadPool pool(4);
  ExecutorOptions exec;  // intra_query_threads = 0: auto
  DiscoveryOptions options;
  const DiscoveryResult result =
      executor.Discover(query, {0, 1}, options, exec, &pool);
  // The tie corpus yields a few hundred PL items — far under the gate.
  EXPECT_EQ(result.stats.shards_used, 1u);
  EXPECT_EQ(result.stats.fanout_threads, 1u);
}

TEST(QueryExecutorTest, AutoModeFansOutLargeQueries) {
  // One hot value whose posting list alone clears the auto gate.
  Corpus corpus;
  {
    Table big("big");
    big.AddColumn("a");
    big.AddColumn("b");
    for (uint64_t r = 0;
         r < QueryExecutor::kAutoParallelMinItems + 100; ++r) {
      (void)big.AppendRow({"dup", "v" + std::to_string(r % 7)});
    }
    corpus.AddTable(std::move(big));
  }
  for (int t = 0; t < 7; ++t) {
    Table table("small" + std::to_string(t));
    table.AddColumn("a");
    table.AddColumn("b");
    (void)table.AppendRow({"dup", "v" + std::to_string(t)});
    corpus.AddTable(std::move(table));
  }
  const auto index = Build(corpus);
  Table query("q");
  query.AddColumn("a");
  query.AddColumn("b");
  for (int i = 0; i < 5; ++i) {
    (void)query.AppendRow({"dup", "v" + std::to_string(i)});
  }
  QueryExecutor executor(&corpus, index.get());

  DiscoveryOptions options;
  const DiscoveryResult serial =
      MateSearch(&corpus, index.get()).Discover(query, {0, 1}, options);

  ThreadPool pool(4);
  ExecutorOptions exec;  // auto
  const DiscoveryResult result =
      executor.Discover(query, {0, 1}, options, exec, &pool);
  EXPECT_GT(result.stats.shards_used, 1u);
  EXPECT_EQ(result.stats.fanout_threads, 4u);
  ExpectSameResult(serial, result, "auto large");
}

TEST(QueryExecutorTest, EstimatePlItemsMatchesFetchTraffic) {
  const Corpus corpus = MakeTieCorpus();
  const auto index = Build(corpus);
  const Table query = MakeQuery();
  const std::vector<ColumnId> keys = {0, 1};
  QueryExecutor executor(&corpus, index.get());

  DiscoveryOptions options;
  options.k = 7;
  ExecutorOptions exec;
  exec.intra_query_threads = 1;
  exec.num_shards = 1;
  const DiscoveryResult serial =
      executor.Discover(query, keys, options, exec, nullptr);
  const uint64_t estimate = executor.EstimatePlItems(query, keys, options);
  EXPECT_GT(estimate, 0u);
  // The estimate is exactly the PL traffic the row loop fetches: shard
  // slices partition every probed posting list, and fetch counters tally
  // whole slices before any exclude/restrict filtering.
  EXPECT_EQ(estimate, serial.stats.pl_items_fetched);

  // Duplicate rows add no new init values, so the estimate is unchanged —
  // it is a pass over *distinct* init-column values, matching how
  // PrepareQuery derives its probe set from distinct key combos.
  Table doubled = MakeQuery();
  for (int i = 0; i < 10; ++i) {
    (void)doubled.AppendRow(
        {"k" + std::to_string(i), "v" + std::to_string(i)});
  }
  EXPECT_EQ(executor.EstimatePlItems(doubled, keys, options), estimate);

  // Degenerate shapes estimate zero, mirroring Discover's early return.
  DiscoveryOptions zero_k = options;
  zero_k.k = 0;
  EXPECT_EQ(executor.EstimatePlItems(query, keys, zero_k), 0u);
  EXPECT_EQ(executor.EstimatePlItems(query, {}, options), 0u);
}

TEST(QueryExecutorTest, EstimateAgreesWithAutoParallelGate) {
  // The public estimate is the same figure the auto-parallel gate consults:
  // the tie corpus sits under the threshold (auto mode stays serial), while
  // a corpus with one hot posting list clears it (auto mode fans out).
  {
    const Corpus corpus = MakeTieCorpus();
    const auto index = Build(corpus);
    QueryExecutor executor(&corpus, index.get());
    EXPECT_LT(executor.EstimatePlItems(MakeQuery(), {0, 1},
                                       DiscoveryOptions{}),
              QueryExecutor::kAutoParallelMinItems);
  }
  {
    Corpus corpus;
    Table big("big");
    big.AddColumn("a");
    big.AddColumn("b");
    for (uint64_t r = 0; r < QueryExecutor::kAutoParallelMinItems + 100;
         ++r) {
      (void)big.AppendRow({"dup", "v" + std::to_string(r % 7)});
    }
    corpus.AddTable(std::move(big));
    const auto index = Build(corpus);
    Table query("q");
    query.AddColumn("a");
    query.AddColumn("b");
    for (int i = 0; i < 5; ++i) {
      (void)query.AppendRow({"dup", "v" + std::to_string(i)});
    }
    QueryExecutor executor(&corpus, index.get());
    EXPECT_GE(executor.EstimatePlItems(query, {0, 1}, DiscoveryOptions{}),
              QueryExecutor::kAutoParallelMinItems);
  }
}

TEST(QueryExecutorTest, SessionEstimateMatchesExecutorAndValidates) {
  SessionOptions session_options;
  session_options.corpus = MakeTieCorpus();
  session_options.build_index = true;
  session_options.num_threads = 1;
  session_options.cache_bytes = 0;
  auto session = Session::Open(std::move(session_options));
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  const Table query = MakeQuery();
  QuerySpec spec;
  spec.table = &query;
  spec.key_columns = {0, 1};
  spec.options.k = 7;

  auto estimate = session->EstimatePlItems(spec);
  ASSERT_TRUE(estimate.ok()) << estimate.status().ToString();
  EXPECT_GT(*estimate, 0u);
  {
    // Same figure as an executor over an independent build of the lake.
    const Corpus corpus = MakeTieCorpus();
    const auto index = Build(corpus);
    QueryExecutor executor(&corpus, index.get());
    EXPECT_EQ(*estimate,
              executor.EstimatePlItems(query, {0, 1}, spec.options));
  }

  // Estimating never perturbs discovery: the subsequent Discover matches a
  // never-estimated session bit for bit.
  auto discovered = session->Discover(spec);
  ASSERT_TRUE(discovered.ok());
  {
    const Corpus corpus = MakeTieCorpus();
    const auto index = Build(corpus);
    QueryExecutor executor(&corpus, index.get());
    ExecutorOptions exec;
    exec.intra_query_threads = 1;
    exec.num_shards = 1;
    ExpectSameResult(
        executor.Discover(query, {0, 1}, spec.options, exec, nullptr),
        *discovered, "estimate-then-discover");
  }

  // Validation mirrors Discover: a bad spec gets the same typed error.
  QuerySpec bad = spec;
  bad.key_columns = {0, 99};
  EXPECT_FALSE(session->EstimatePlItems(bad).ok());
}

TEST(QueryExecutorTest, SessionRoutesKnobsAndReportsShape) {
  SessionOptions session_options;
  session_options.corpus = MakeTieCorpus();
  session_options.build_index = true;
  session_options.num_threads = 4;
  session_options.cache_bytes = 0;
  auto session = Session::Open(std::move(session_options));
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  const Table query = MakeQuery();
  QuerySpec spec;
  spec.table = &query;
  spec.key_columns = {0, 1};
  spec.options.k = 7;
  spec.intra_query_threads = 8;  // capped by the 4-wide pool
  spec.intra_query_shards = 3;

  QuerySpec serial_spec = spec;
  serial_spec.intra_query_threads = 1;
  serial_spec.intra_query_shards = 1;
  auto serial = session->Discover(serial_spec);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(serial->stats.shards_used, 1u);

  auto sharded = session->Discover(spec);
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded->stats.shards_used, 3u);
  EXPECT_EQ(sharded->stats.fanout_threads, 3u);  // min(width 4, shards 3)
  ExpectSameResult(*serial, *sharded, "session discover");

  // A single-spec batch routes through the intra-query executor and the
  // batch stats surface the fan-out.
  auto batch = session->DiscoverBatch({spec});
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->results.size(), 1u);
  ExpectSameResult(*serial, batch->results[0], "single-spec batch");
  EXPECT_EQ(batch->stats.intra_parallel_queries, 1u);
  EXPECT_EQ(batch->stats.intra_shards_total, 3u);
  EXPECT_EQ(batch->stats.max_fanout_threads, 3u);

  // A batch with several distinct queries spends the pool across queries:
  // every per-query result reports the serial shape.
  QuerySpec spec2 = spec;
  spec2.options.k = 3;
  auto multi = session->DiscoverBatch({spec, spec2});
  ASSERT_TRUE(multi.ok());
  for (const DiscoveryResult& r : multi->results) {
    EXPECT_EQ(r.stats.shards_used, 1u);
  }
  EXPECT_EQ(multi->stats.intra_parallel_queries, 0u);
}

}  // namespace
}  // namespace mate
