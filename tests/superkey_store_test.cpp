#include "index/superkey_store.h"

#include <gtest/gtest.h>

#include "util/coding.h"
#include "util/rng.h"

namespace mate {
namespace {

BitVector RandomKey(Rng* rng, size_t bits, int ones) {
  BitVector v(bits);
  for (int i = 0; i < ones; ++i) v.SetBit(rng->Uniform(bits));
  return v;
}

TEST(SuperKeyStoreTest, SetGetRoundTrip) {
  SuperKeyStore store(128);
  store.EnsureTable(0, 3);
  Rng rng(5);
  BitVector key = RandomKey(&rng, 128, 9);
  store.Set(0, 1, key);
  EXPECT_EQ(store.Get(0, 1), key);
  EXPECT_TRUE(store.Get(0, 0).IsZero());
}

TEST(SuperKeyStoreTest, EnsureTableGrowsSparsely) {
  SuperKeyStore store(128);
  store.EnsureTable(5, 2);  // tables 0..5 exist, only 5 has rows
  EXPECT_EQ(store.num_tables(), 6u);
  EXPECT_EQ(store.NumRows(5), 2u);
  EXPECT_EQ(store.NumRows(0), 0u);
  store.EnsureTable(5, 1);  // shrinking is a no-op
  EXPECT_EQ(store.NumRows(5), 2u);
}

TEST(SuperKeyStoreTest, AppendRowReturnsSequentialIds) {
  SuperKeyStore store(256);
  EXPECT_EQ(store.AppendRow(0), 0u);
  EXPECT_EQ(store.AppendRow(0), 1u);
  EXPECT_EQ(store.AppendRow(2), 0u);
  EXPECT_EQ(store.NumRows(0), 2u);
}

TEST(SuperKeyStoreTest, OrIntoAccumulates) {
  SuperKeyStore store(128);
  store.EnsureTable(0, 1);
  BitVector a(128), b(128);
  a.SetBit(3);
  b.SetBit(100);
  store.OrInto(0, 0, a);
  store.OrInto(0, 0, b);
  BitVector key = store.Get(0, 0);
  EXPECT_TRUE(key.TestBit(3));
  EXPECT_TRUE(key.TestBit(100));
  EXPECT_EQ(key.CountOnes(), 2u);
}

TEST(SuperKeyStoreTest, ResetZeroes) {
  SuperKeyStore store(128);
  store.EnsureTable(0, 2);
  BitVector a(128);
  a.SetBit(7);
  store.Set(0, 0, a);
  store.Set(0, 1, a);
  store.Reset(0, 0);
  EXPECT_TRUE(store.Get(0, 0).IsZero());
  EXPECT_FALSE(store.Get(0, 1).IsZero());
}

TEST(SuperKeyStoreTest, CoversMatchesIsSubsetOf) {
  SuperKeyStore store(128);
  store.EnsureTable(0, 1);
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    BitVector row_key = RandomKey(&rng, 128, 12);
    BitVector query = RandomKey(&rng, 128, 5);
    store.Set(0, 0, row_key);
    EXPECT_EQ(store.Covers(0, 0, query), query.IsSubsetOf(row_key));
  }
}

// CoversBatch is the executor's gather/probe fast path: bit i of the
// returned mask must equal the single-row Covers answer for rows[i], for
// any count up to kMaxProbeBatch, any (non-contiguous, repeated) row-id
// pattern, at every stored key width — under both the dispatched and the
// forced-scalar kernels.
TEST(SuperKeyStoreTest, CoversBatchMatchesSingleRowProbes) {
  const bool was_scalar =
      simd::ActiveLevel() == simd::KernelLevel::kScalar;
  Rng rng(21);
  for (size_t hash_bits : {size_t{128}, size_t{192}, size_t{512}}) {
    SuperKeyStore store(hash_bits);
    constexpr size_t kRows = 40;
    store.EnsureTable(0, kRows);
    for (RowId r = 0; r < kRows; ++r) {
      store.Set(0, r, RandomKey(&rng, hash_bits, 20));
    }
    for (int trial = 0; trial < 50; ++trial) {
      const BitVector query = RandomKey(&rng, hash_bits, 1 + trial % 8);
      const size_t count = rng.Uniform(SuperKeyStore::kMaxProbeBatch + 1);
      std::vector<RowId> rows(count);
      for (size_t i = 0; i < count; ++i) {
        rows[i] = static_cast<RowId>(rng.Uniform(kRows));  // repeats allowed
      }
      for (bool force_scalar : {false, true}) {
        simd::ForceScalar(force_scalar);
        const uint32_t mask = store.CoversBatch(0, rows.data(), count, query);
        for (size_t i = 0; i < count; ++i) {
          EXPECT_EQ((mask >> i) & 1u, store.Covers(0, rows[i], query) ? 1u : 0u)
              << "bits=" << hash_bits << " i=" << i
              << " scalar=" << force_scalar;
        }
        EXPECT_EQ(mask >> count, 0u);  // bits past count stay clear
      }
    }
  }
  simd::ForceScalar(was_scalar);
}

TEST(SuperKeyStoreTest, CoversBatchEmptyAndFullBlock) {
  SuperKeyStore store(128);
  store.EnsureTable(0, SuperKeyStore::kMaxProbeBatch);
  BitVector query(128);
  query.SetBit(5);
  BitVector covering(128);
  covering.SetBit(5);
  covering.SetBit(70);
  // Even rows cover the query, odd rows don't.
  for (RowId r = 0; r < SuperKeyStore::kMaxProbeBatch; ++r) {
    if (r % 2 == 0) store.Set(0, r, covering);
  }
  std::vector<RowId> rows(SuperKeyStore::kMaxProbeBatch);
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<RowId>(i);
  EXPECT_EQ(store.CoversBatch(0, rows.data(), 0, query), 0u);
  EXPECT_EQ(store.CoversBatch(0, rows.data(), rows.size(), query),
            0x5555u);  // even bit positions set
}

TEST(SuperKeyStoreTest, MemoryBytesTracksRows) {
  SuperKeyStore store(128);
  EXPECT_EQ(store.MemoryBytes(), 0u);
  store.EnsureTable(0, 10);
  EXPECT_EQ(store.MemoryBytes(), 10u * 16);  // 128 bits = 16 bytes per row
}

TEST(SuperKeyStoreTest, SerializationRoundTrip) {
  SuperKeyStore store(192);
  Rng rng(11);
  store.EnsureTable(0, 3);
  store.EnsureTable(2, 1);
  for (RowId r = 0; r < 3; ++r) store.Set(0, r, RandomKey(&rng, 192, 8));
  store.Set(2, 0, RandomKey(&rng, 192, 8));

  std::string bytes;
  store.AppendToString(&bytes);
  std::string_view cursor = bytes;
  auto loaded = SuperKeyStore::ParseFrom(&cursor);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(cursor.empty());
  EXPECT_EQ(loaded->hash_bits(), 192u);
  EXPECT_EQ(loaded->num_tables(), 3u);
  for (RowId r = 0; r < 3; ++r) EXPECT_EQ(loaded->Get(0, r), store.Get(0, r));
  EXPECT_EQ(loaded->Get(2, 0), store.Get(2, 0));
}

TEST(SuperKeyStoreTest, ParseRejectsCorruptWidth) {
  std::string bytes;
  PutVarint64(&bytes, 100);  // not a multiple of 64
  std::string_view cursor = bytes;
  EXPECT_FALSE(SuperKeyStore::ParseFrom(&cursor).ok());
}

}  // namespace
}  // namespace mate
