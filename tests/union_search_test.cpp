#include "core/union_search.h"

#include <gtest/gtest.h>

#include "hash/xash.h"

namespace mate {
namespace {

class UnionSearchTest : public testing::Test {
 protected:
  void SetUp() override {
    XashOptions opts;
    opts.hash_bits = 256;
    hash_ = std::make_unique<Xash>(opts);

    // Query-like domain: cities + countries + numeric population.
    Table unionable("eu_cities");
    unionable.AddColumn("city");
    unionable.AddColumn("country");
    unionable.AddColumn("population");
    (void)unionable.AppendRow({"berlin", "germany", "3600000"});
    (void)unionable.AppendRow({"hamburg", "germany", "1800000"});
    (void)unionable.AppendRow({"vienna", "austria", "1900000"});
    (void)unionable.AppendRow({"paris", "france", "2100000"});
    unionable_id_ = corpus_.AddTable(std::move(unionable));

    // Same schema *shape* but disjoint domain (animals).
    Table disjoint("animals");
    disjoint.AddColumn("name");
    disjoint.AddColumn("class");
    disjoint.AddColumn("weight");
    (void)disjoint.AppendRow({"elephantine", "mammalia", "output-xyz"});
    (void)disjoint.AppendRow({"crocodilian", "reptilia", "qqqq-zzz"});
    disjoint_id_ = corpus_.AddTable(std::move(disjoint));

    // Partially unionable: shares the city column only.
    Table partial("city_airports");
    partial.AddColumn("city");
    partial.AddColumn("iata");
    (void)partial.AppendRow({"berlin", "ber"});
    (void)partial.AppendRow({"paris", "cdg"});
    (void)partial.AppendRow({"vienna", "vie"});
    partial_id_ = corpus_.AddTable(std::move(partial));

    index_ = std::make_unique<UnionIndex>(
        UnionIndex::Build(corpus_, hash_.get(), /*sample_size=*/32));
  }

  Table MakeQuery() const {
    Table q("more_cities");
    q.AddColumn("city");
    q.AddColumn("country");
    q.AddColumn("population");
    (void)q.AppendRow({"berlin", "germany", "3600000"});
    (void)q.AppendRow({"vienna", "austria", "1900000"});
    (void)q.AppendRow({"hamburg", "germany", "1800000"});
    return q;
  }

  Corpus corpus_;
  std::unique_ptr<Xash> hash_;
  std::unique_ptr<UnionIndex> index_;
  TableId unionable_id_ = 0;
  TableId disjoint_id_ = 0;
  TableId partial_id_ = 0;
};

TEST_F(UnionSearchTest, BuildsOneSketchPerNonEmptyColumn) {
  EXPECT_EQ(index_->NumSketches(), 3u + 3u + 2u);
  EXPECT_GT(index_->MemoryBytes(), 0u);
}

TEST_F(UnionSearchTest, FindsTheUnionableTableFirst) {
  UnionSearchOptions options;
  auto results = index_->Discover(MakeQuery(), options);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].table_id, unionable_id_);
  EXPECT_GT(results[0].score, 0.9);
  // All three columns aligned, identity mapping.
  ASSERT_EQ(results[0].alignment.size(), 3u);
  for (const ColumnAlignment& a : results[0].alignment) {
    EXPECT_EQ(a.query_column, a.candidate_column);
    EXPECT_GT(a.score, 0.9);
  }
}

TEST_F(UnionSearchTest, DisjointDomainIsNotReported) {
  UnionSearchOptions options;
  for (const UnionResult& result : index_->Discover(MakeQuery(), options)) {
    EXPECT_NE(result.table_id, disjoint_id_);
  }
}

TEST_F(UnionSearchTest, PartialTableNeedsLowerThreshold) {
  UnionSearchOptions strict;
  strict.min_aligned_fraction = 0.9;  // needs all 3 columns
  for (const UnionResult& result : index_->Discover(MakeQuery(), strict)) {
    EXPECT_NE(result.table_id, partial_id_);
  }
  UnionSearchOptions lenient;
  lenient.min_aligned_fraction = 0.3;  // 1 of 3 columns suffices
  bool found_partial = false;
  for (const UnionResult& result : index_->Discover(MakeQuery(), lenient)) {
    if (result.table_id == partial_id_) found_partial = true;
  }
  EXPECT_TRUE(found_partial);
}

TEST_F(UnionSearchTest, ExcludeSkipsTables) {
  UnionSearchOptions options;
  auto results = index_->Discover(MakeQuery(), options, {unionable_id_});
  for (const UnionResult& result : results) {
    EXPECT_NE(result.table_id, unionable_id_);
  }
}

TEST_F(UnionSearchTest, SelfUnionScoresPerfectly) {
  // A table drawn from the corpus table itself must align perfectly: the
  // sketch has no false negatives for sampled values.
  UnionSearchOptions options;
  Table self("self");
  self.AddColumn("city");
  self.AddColumn("country");
  self.AddColumn("population");
  (void)self.AppendRow({"berlin", "germany", "3600000"});
  (void)self.AppendRow({"paris", "france", "2100000"});
  auto results = index_->Discover(self, options);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].table_id, unionable_id_);
  EXPECT_DOUBLE_EQ(results[0].score, 1.0);
}

TEST_F(UnionSearchTest, KLimitsResults) {
  UnionSearchOptions options;
  options.k = 1;
  options.min_aligned_fraction = 0.1;
  options.min_column_score = 0.1;
  auto results = index_->Discover(MakeQuery(), options);
  EXPECT_LE(results.size(), 1u);
}

TEST_F(UnionSearchTest, EmptyQueryReturnsNothing) {
  Table empty("empty");
  empty.AddColumn("a");
  UnionSearchOptions options;
  EXPECT_TRUE(index_->Discover(empty, options).empty());
}

}  // namespace
}  // namespace mate
