#include "core/joinability.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "workload/vocabulary.h"

namespace mate {
namespace {

// The paper's Figure 1 tables.
Table MakeQueryD() {
  Table d("d");
  d.AddColumn("F. Name");
  d.AddColumn("L. Name");
  d.AddColumn("Country");
  d.AddColumn("Salary");
  (void)d.AppendRow({"Muhammad", "Lee", "US", "60k"});
  (void)d.AppendRow({"Ansel", "Adams", "UK", "50k"});
  (void)d.AppendRow({"Ansel", "Adams", "US", "400k"});
  (void)d.AppendRow({"Muhammad", "Lee", "Germany", "90k"});
  (void)d.AppendRow({"Helmut", "Newton", "Germany", "300k"});
  return d;
}

Table MakeCandidateT1() {
  Table t("T1");
  t.AddColumn("Vorname");
  t.AddColumn("Nachname");
  t.AddColumn("Land");
  t.AddColumn("Besetzung");
  (void)t.AppendRow({"Helmut", "Newton", "Germany", "Photographer"});
  (void)t.AppendRow({"Muhammad", "Lee", "US", "Dancer"});
  (void)t.AppendRow({"Ansel", "Adams", "UK", "Dancer"});
  (void)t.AppendRow({"Ansel", "Adams", "US", "Photographer"});
  (void)t.AppendRow({"Muhammad", "Ali", "US", "Boxer"});
  (void)t.AppendRow({"Muhammad", "Lee", "Germany", "Birder"});
  (void)t.AppendRow({"Gretchen", "Lee", "Germany", "Artist"});
  (void)t.AppendRow({"Adam", "Sandler", "US", "Actor"});
  return t;
}

TEST(ExtractKeyCombosTest, DistinctNormalizedCombos) {
  Table d = MakeQueryD();
  auto combos = ExtractKeyCombos(d, {0, 1, 2});
  // All 5 rows have distinct (F,L,Country) combos.
  EXPECT_EQ(combos.size(), 5u);
  EXPECT_EQ(combos[0], (std::vector<std::string>{"muhammad", "lee", "us"}));
}

TEST(ExtractKeyCombosTest, DeduplicatesAndSkipsEmpty) {
  Table t("q");
  t.AddColumn("a");
  t.AddColumn("b");
  (void)t.AppendRow({"X", "y"});
  (void)t.AppendRow({"x ", "Y"});   // duplicate after normalization
  (void)t.AppendRow({"", "z"});     // empty key value -> dropped
  (void)t.AppendRow({"w", "  "});   // empty after trim -> dropped
  auto combos = ExtractKeyCombos(t, {0, 1});
  ASSERT_EQ(combos.size(), 1u);
  EXPECT_EQ(combos[0], (std::vector<std::string>{"x", "y"}));
}

TEST(ExtractKeyCombosTest, SkipsDeletedRows) {
  Table t("q");
  t.AddColumn("a");
  (void)t.AppendRow({"one"});
  (void)t.AppendRow({"two"});
  ASSERT_TRUE(t.DeleteRow(0).ok());
  auto combos = ExtractKeyCombos(t, {0});
  ASSERT_EQ(combos.size(), 1u);
  EXPECT_EQ(combos[0][0], "two");
}

TEST(BruteForceTest, Figure1GivesJoinabilityFive) {
  // §2: the best mapping (F->Vorname, L->Nachname, Country->Land) yields 5.
  BruteForceResult result =
      BruteForceJoinability(MakeQueryD(), {0, 1, 2}, MakeCandidateT1());
  EXPECT_EQ(result.joinability, 5);
  EXPECT_EQ(result.best_mapping, (std::vector<ColumnId>{0, 1, 2}));
}

TEST(BruteForceTest, SwappedMappingGivesZero) {
  // §2: mapping F->Nachname, L->Vorname, Country->Land yields 0 — so a
  // query with swapped columns must still find 5 via the swapped mapping.
  Table d = MakeQueryD();
  BruteForceResult result =
      BruteForceJoinability(d, {1, 0, 2}, MakeCandidateT1());
  EXPECT_EQ(result.joinability, 5);
  EXPECT_EQ(result.best_mapping, (std::vector<ColumnId>{1, 0, 2}));
}

TEST(BruteForceTest, KeyWiderThanCandidateIsZero) {
  Table narrow("n");
  narrow.AddColumn("only");
  (void)narrow.AppendRow({"muhammad"});
  BruteForceResult result =
      BruteForceJoinability(MakeQueryD(), {0, 1, 2}, narrow);
  EXPECT_EQ(result.joinability, 0);
}

TEST(BruteForceTest, SetSemanticsCountDistinctCombos) {
  Table q("q");
  q.AddColumn("a");
  q.AddColumn("b");
  (void)q.AppendRow({"x", "y"});
  Table cand("c");
  cand.AddColumn("c1");
  cand.AddColumn("c2");
  // The same combo appears in 3 candidate rows: still j = 1 (Eq. 1 is a set
  // intersection of projections).
  (void)cand.AppendRow({"x", "y"});
  (void)cand.AppendRow({"x", "y"});
  (void)cand.AppendRow({"x", "y"});
  EXPECT_EQ(BruteForceJoinability(q, {0, 1}, cand).joinability, 1);
}

TEST(MappingAccumulatorTest, MaxOverMappings) {
  MappingAccumulator acc;
  acc.AddMatch({0, 1}, 0);
  acc.AddMatch({0, 1}, 1);
  acc.AddMatch({0, 1}, 1);  // duplicate combo: still one
  acc.AddMatch({2, 3}, 5);
  EXPECT_EQ(acc.MaxJoinability(), 2);
  EXPECT_EQ(acc.BestMapping(), (std::vector<ColumnId>{0, 1}));
  acc.Clear();
  EXPECT_EQ(acc.MaxJoinability(), 0);
  EXPECT_TRUE(acc.BestMapping().empty());
}

TEST(VerifyComboInRowTest, FindsMatchAndMapping) {
  Table t = MakeCandidateT1();
  MappingAccumulator acc;
  uint64_t cmp = 0;
  EXPECT_TRUE(VerifyComboInRow(t, 1, {"muhammad", "lee", "us"}, 0,
                               kInvalidColumnId, 0, &acc, &cmp));
  EXPECT_EQ(acc.MaxJoinability(), 1);
  EXPECT_EQ(acc.BestMapping(), (std::vector<ColumnId>{0, 1, 2}));
  EXPECT_GT(cmp, 0u);
}

TEST(VerifyComboInRowTest, RejectsPartialMatch) {
  Table t = MakeCandidateT1();
  MappingAccumulator acc;
  uint64_t cmp = 0;
  // Row 4 is (Muhammad, Ali, US, Boxer): "lee" missing.
  EXPECT_FALSE(VerifyComboInRow(t, 4, {"muhammad", "lee", "us"}, 0,
                                kInvalidColumnId, 0, &acc, &cmp));
  EXPECT_EQ(acc.MaxJoinability(), 0);
}

TEST(VerifyComboInRowTest, HonorsFixedColumn) {
  Table t = MakeCandidateT1();
  MappingAccumulator acc;
  uint64_t cmp = 0;
  // Fixing "us" (combo position 2) to column 2 works for row 1...
  EXPECT_TRUE(VerifyComboInRow(t, 1, {"muhammad", "lee", "us"}, 0,
                               /*fixed_column=*/2, /*fixed_position=*/2, &acc,
                               &cmp));
  // ...but fixing it to column 3 ("Dancer") must fail.
  MappingAccumulator acc2;
  EXPECT_FALSE(VerifyComboInRow(t, 1, {"muhammad", "lee", "us"}, 0,
                                /*fixed_column=*/3, /*fixed_position=*/2,
                                &acc2, &cmp));
}

TEST(VerifyComboInRowTest, RequiresDistinctColumns) {
  Table t("t");
  t.AddColumn("a");
  t.AddColumn("b");
  (void)t.AppendRow({"x", "z"});
  MappingAccumulator acc;
  uint64_t cmp = 0;
  // Both key values are "x" but the row has only one "x" column: the two
  // positions cannot map to distinct columns.
  EXPECT_FALSE(VerifyComboInRow(t, 0, {"x", "x"}, 0, kInvalidColumnId, 0,
                                &acc, &cmp));
}

TEST(VerifyComboInRowTest, EnumeratesAlternativeMappings) {
  Table t("t");
  t.AddColumn("a");
  t.AddColumn("b");
  t.AddColumn("c");
  (void)t.AppendRow({"x", "x", "y"});
  MappingAccumulator acc;
  uint64_t cmp = 0;
  // "x" can map to column 0 or 1: both assignments must be recorded.
  EXPECT_TRUE(VerifyComboInRow(t, 0, {"x", "y"}, 0, kInvalidColumnId, 0,
                               &acc, &cmp));
  acc.AddMatch({0, 2}, 1);  // a second combo under one of the mappings
  EXPECT_EQ(acc.MaxJoinability(), 2);
}

TEST(VerifyComboInRowTest, RandomAgreementWithBruteForce) {
  // Property: for a 1-row candidate, VerifyComboInRow agrees with
  // BruteForceJoinability on whether j > 0.
  Rng rng(31);
  for (int trial = 0; trial < 300; ++trial) {
    size_t cols = 2 + rng.Uniform(4);
    Table cand("c");
    for (size_t c = 0; c < cols; ++c) cand.AddColumn("c" + std::to_string(c));
    std::vector<std::string> row;
    for (size_t c = 0; c < cols; ++c) {
      row.push_back(std::string(1, static_cast<char>('a' + rng.Uniform(4))));
    }
    (void)cand.AppendRow(std::vector<std::string>(row));

    size_t m = 1 + rng.Uniform(2);
    Table query("q");
    std::vector<ColumnId> key_cols;
    std::vector<std::string> combo;
    for (size_t i = 0; i < m; ++i) {
      query.AddColumn("k" + std::to_string(i));
      key_cols.push_back(static_cast<ColumnId>(i));
      combo.push_back(std::string(1, static_cast<char>('a' + rng.Uniform(4))));
    }
    (void)query.AppendRow(std::vector<std::string>(combo));

    MappingAccumulator acc;
    uint64_t cmp = 0;
    bool verified = VerifyComboInRow(cand, 0, combo, 0, kInvalidColumnId, 0,
                                     &acc, &cmp);
    int64_t brute = BruteForceJoinability(query, key_cols, cand).joinability;
    EXPECT_EQ(verified, brute > 0) << trial;
    EXPECT_EQ(acc.MaxJoinability(), brute) << trial;
  }
}

}  // namespace
}  // namespace mate
