// TableStore (storage/table_store.h): lazy per-table materialization under
// a corpus. Shape must be fully answerable with zero cells parsed, Get must
// materialize each table exactly once under concurrency (TSan guards the
// once-latch discipline), the warmer callable must survive moves of the
// owning Corpus, and a corrupt blob must latch a sticky status while
// leaving a shape-complete stub.

#include "storage/table_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "storage/corpus.h"
#include "storage/corpus_io.h"

namespace mate {
namespace {

Corpus MakeCorpus(size_t num_tables, size_t rows_per_table) {
  Corpus corpus;
  for (size_t t = 0; t < num_tables; ++t) {
    Table table("table_" + std::to_string(t));
    table.AddColumn("a");
    table.AddColumn("b");
    table.AddColumn("c");
    for (size_t r = 0; r < rows_per_table; ++r) {
      (void)table.AppendRow({"t" + std::to_string(t) + "r" +
                                 std::to_string(r),
                             "x" + std::to_string(r), "y"});
    }
    if (rows_per_table > 1) EXPECT_TRUE(table.DeleteRow(0).ok());
    corpus.AddTable(std::move(table));
  }
  return corpus;
}

// Round-trips `corpus` through a v2 file and opens it lazily.
Corpus OpenLazyCopy(const Corpus& corpus, const std::string& tag) {
  const std::string path =
      testing::TempDir() + "/mate_table_store_" + tag + ".corpus";
  EXPECT_TRUE(SaveCorpus(corpus, corpus.ComputeStats(), path).ok());
  auto lazy = OpenCorpusLazy(path);
  EXPECT_TRUE(lazy.ok()) << lazy.status().ToString();
  std::remove(path.c_str());  // already mmap'd; unlink is fine on POSIX
  return std::move(*lazy);
}

TEST(TableStoreTest, ShapeIsServedWithoutMaterialization) {
  Corpus original = MakeCorpus(6, 4);
  Corpus lazy = OpenLazyCopy(original, "shape");
  ASSERT_EQ(lazy.NumTables(), original.NumTables());
  EXPECT_EQ(lazy.tables_resident(), 0u);
  EXPECT_FALSE(lazy.fully_resident());
  for (TableId t = 0; t < lazy.NumTables(); ++t) {
    EXPECT_EQ(lazy.table_name(t), original.table_name(t));
    EXPECT_EQ(lazy.table_num_columns(t), original.table_num_columns(t));
    EXPECT_EQ(lazy.table_num_rows(t), original.table_num_rows(t));
    EXPECT_EQ(lazy.table_num_live_rows(t), original.table_num_live_rows(t));
    for (ColumnId c = 0; c < lazy.table_num_columns(t); ++c) {
      EXPECT_EQ(lazy.table_column_name(t, c), original.table_column_name(t, c));
    }
    EXPECT_FALSE(lazy.table_resident(t));
  }
  // Shape questions answered; still nothing materialized.
  EXPECT_EQ(lazy.tables_resident(), 0u);
  EXPECT_TRUE(lazy.load_status().ok());
}

TEST(TableStoreTest, GetMaterializesExactlyTheTouchedTable) {
  Corpus original = MakeCorpus(5, 3);
  Corpus lazy = OpenLazyCopy(original, "touch");
  const Table& t2 = lazy.table(2);
  EXPECT_EQ(t2.cell(1, 0), original.table(2).cell(1, 0));
  EXPECT_TRUE(lazy.table_resident(2));
  EXPECT_EQ(lazy.tables_resident(), 1u);
  EXPECT_FALSE(lazy.fully_resident());
  // Repeated access parses nothing new.
  EXPECT_EQ(&lazy.table(2), &t2);
  EXPECT_EQ(lazy.tables_resident(), 1u);
}

TEST(TableStoreTest, MaterializeAllMakesTheCorpusEqualToEager) {
  Corpus original = MakeCorpus(4, 6);
  Corpus lazy = OpenLazyCopy(original, "all");
  ASSERT_TRUE(lazy.MaterializeAll().ok());
  EXPECT_TRUE(lazy.fully_resident());
  EXPECT_EQ(lazy.tables_resident(), lazy.NumTables());
  EXPECT_TRUE(CorporaEqual(original, lazy));
  // Idempotent, and Get keeps working after the backing was released.
  ASSERT_TRUE(lazy.MaterializeAll().ok());
  EXPECT_EQ(lazy.table(0).cell(1, 1), original.table(0).cell(1, 1));
}

TEST(TableStoreTest, ConcurrentGetsMaterializeOnceAndRaceFree) {
  Corpus original = MakeCorpus(16, 8);
  Corpus lazy = OpenLazyCopy(original, "race");
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&lazy, w] {
      // Every thread touches every table, starting at a different point so
      // same-table and different-table races both happen.
      const size_t n = lazy.NumTables();
      for (size_t i = 0; i < n; ++i) {
        const TableId t = static_cast<TableId>((i + w * 3) % n);
        const Table& table = lazy.table(t);
        EXPECT_EQ(table.NumColumns(), 3u);
        EXPECT_EQ(table.cell(1, 1), "x1");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_TRUE(lazy.fully_resident());
  EXPECT_TRUE(CorporaEqual(original, lazy));
}

TEST(TableStoreTest, WarmerRacesOnDemandReadersSafely) {
  Corpus original = MakeCorpus(24, 10);
  Corpus lazy = OpenLazyCopy(original, "warmrace");
  std::function<Status()> warmer = lazy.MakeWarmer();
  std::thread warm_thread([&warmer] { EXPECT_TRUE(warmer().ok()); });
  for (TableId t = 0; t < lazy.NumTables(); ++t) {
    EXPECT_EQ(lazy.table(t).name(), "table_" + std::to_string(t));
  }
  warm_thread.join();
  EXPECT_TRUE(lazy.fully_resident());
  EXPECT_TRUE(CorporaEqual(original, lazy));
}

TEST(TableStoreTest, WarmerSurvivesAMoveOfTheOwningCorpus) {
  Corpus original = MakeCorpus(32, 12);
  Corpus lazy = OpenLazyCopy(original, "move");
  std::function<Status()> warmer = lazy.MakeWarmer();
  std::thread warm_thread([&warmer] { EXPECT_TRUE(warmer().ok()); });
  // The warmer co-owns the store's state: moving the corpus handle while
  // it streams must stay safe (ASan/TSan turn a lifetime bug into a hard
  // failure).
  Corpus moved = std::move(lazy);
  warm_thread.join();
  EXPECT_TRUE(moved.fully_resident());
  EXPECT_TRUE(CorporaEqual(original, moved));
}

TEST(TableStoreTest, MutableAccessMaterializesAndShapeTracksEdits) {
  Corpus original = MakeCorpus(3, 4);
  Corpus lazy = OpenLazyCopy(original, "mutate");
  Table* t1 = lazy.mutable_table(1);
  EXPECT_TRUE(lazy.table_resident(1));
  t1->AddColumn("d");
  ASSERT_TRUE(t1->AppendRow({"p", "q", "r", "s"}).ok());
  // Shape accessors must reflect the live table, not the stale header.
  EXPECT_EQ(lazy.table_num_columns(1), 4u);
  EXPECT_EQ(lazy.table_num_rows(1), original.table_num_rows(1) + 1);
  EXPECT_EQ(lazy.table_column_name(1, 3), "d");
  // Untouched tables still answer from the header.
  EXPECT_FALSE(lazy.table_resident(2));
  EXPECT_EQ(lazy.table_num_columns(2), 3u);
}

TEST(TableStoreTest, AddTableAfterLazyOpenIsResident) {
  Corpus lazy = OpenLazyCopy(MakeCorpus(2, 2), "append");
  Table extra("extra");
  extra.AddColumn("z");
  (void)extra.AppendRow({"42"});
  const TableId id = lazy.AddTable(std::move(extra));
  EXPECT_TRUE(lazy.table_resident(id));
  EXPECT_EQ(lazy.table_name(id), "extra");
  EXPECT_EQ(lazy.table(id).cell(0, 0), "42");
  EXPECT_EQ(lazy.tables_resident(), 1u);  // the two lazy tables stay cold
  EXPECT_FALSE(lazy.fully_resident());
}

TEST(TableStoreTest, EmptyCorpusIsTriviallyResident) {
  Corpus lazy = OpenLazyCopy(Corpus{}, "empty");
  EXPECT_EQ(lazy.NumTables(), 0u);
  EXPECT_TRUE(lazy.fully_resident());
  EXPECT_TRUE(lazy.MaterializeAll().ok());
}

TEST(TableStoreTest, ResidentStoreShapeAccessorsMatchTables) {
  Corpus corpus = MakeCorpus(3, 5);
  for (TableId t = 0; t < corpus.NumTables(); ++t) {
    EXPECT_TRUE(corpus.table_resident(t));
    EXPECT_EQ(corpus.table_name(t), corpus.table(t).name());
    EXPECT_EQ(corpus.table_num_rows(t), corpus.table(t).NumRows());
    EXPECT_EQ(corpus.table_num_live_rows(t), corpus.table(t).NumLiveRows());
  }
  EXPECT_TRUE(corpus.fully_resident());
  EXPECT_TRUE(corpus.load_status().ok());
  EXPECT_TRUE(corpus.MaterializeAll().ok());  // no-op, stays OK
}

}  // namespace
}  // namespace mate
