// TableStore (storage/table_store.h): lazy per-table materialization under
// a corpus. Shape must be fully answerable with zero cells parsed, Get must
// materialize each table exactly once under concurrency (TSan guards the
// once-latch discipline), the warmer callable must survive moves of the
// owning Corpus, and a corrupt blob must latch a sticky status while
// leaving a shape-complete stub.

#include "storage/table_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "storage/corpus.h"
#include "storage/corpus_io.h"

namespace mate {
namespace {

Corpus MakeCorpus(size_t num_tables, size_t rows_per_table) {
  Corpus corpus;
  for (size_t t = 0; t < num_tables; ++t) {
    Table table("table_" + std::to_string(t));
    table.AddColumn("a");
    table.AddColumn("b");
    table.AddColumn("c");
    for (size_t r = 0; r < rows_per_table; ++r) {
      (void)table.AppendRow({"t" + std::to_string(t) + "r" +
                                 std::to_string(r),
                             "x" + std::to_string(r), "y"});
    }
    if (rows_per_table > 1) EXPECT_TRUE(table.DeleteRow(0).ok());
    corpus.AddTable(std::move(table));
  }
  return corpus;
}

// Round-trips `corpus` through a v2 file and opens it lazily.
Corpus OpenLazyCopy(const Corpus& corpus, const std::string& tag) {
  const std::string path =
      testing::TempDir() + "/mate_table_store_" + tag + ".corpus";
  EXPECT_TRUE(SaveCorpus(corpus, corpus.ComputeStats(), path).ok());
  auto lazy = OpenCorpusLazy(path);
  EXPECT_TRUE(lazy.ok()) << lazy.status().ToString();
  std::remove(path.c_str());  // already mmap'd; unlink is fine on POSIX
  return std::move(*lazy);
}

TEST(TableStoreTest, ShapeIsServedWithoutMaterialization) {
  Corpus original = MakeCorpus(6, 4);
  Corpus lazy = OpenLazyCopy(original, "shape");
  ASSERT_EQ(lazy.NumTables(), original.NumTables());
  EXPECT_EQ(lazy.tables_resident(), 0u);
  EXPECT_FALSE(lazy.fully_resident());
  for (TableId t = 0; t < lazy.NumTables(); ++t) {
    EXPECT_EQ(lazy.table_name(t), original.table_name(t));
    EXPECT_EQ(lazy.table_num_columns(t), original.table_num_columns(t));
    EXPECT_EQ(lazy.table_num_rows(t), original.table_num_rows(t));
    EXPECT_EQ(lazy.table_num_live_rows(t), original.table_num_live_rows(t));
    for (ColumnId c = 0; c < lazy.table_num_columns(t); ++c) {
      EXPECT_EQ(lazy.table_column_name(t, c), original.table_column_name(t, c));
    }
    EXPECT_FALSE(lazy.table_resident(t));
  }
  // Shape questions answered; still nothing materialized.
  EXPECT_EQ(lazy.tables_resident(), 0u);
  EXPECT_TRUE(lazy.load_status().ok());
}

TEST(TableStoreTest, GetMaterializesExactlyTheTouchedTable) {
  Corpus original = MakeCorpus(5, 3);
  Corpus lazy = OpenLazyCopy(original, "touch");
  const Table& t2 = lazy.table(2);
  EXPECT_EQ(t2.cell(1, 0), original.table(2).cell(1, 0));
  EXPECT_TRUE(lazy.table_resident(2));
  EXPECT_EQ(lazy.tables_resident(), 1u);
  EXPECT_FALSE(lazy.fully_resident());
  // Repeated access parses nothing new.
  EXPECT_EQ(&lazy.table(2), &t2);
  EXPECT_EQ(lazy.tables_resident(), 1u);
}

TEST(TableStoreTest, MaterializeAllMakesTheCorpusEqualToEager) {
  Corpus original = MakeCorpus(4, 6);
  Corpus lazy = OpenLazyCopy(original, "all");
  ASSERT_TRUE(lazy.MaterializeAll().ok());
  EXPECT_TRUE(lazy.fully_resident());
  EXPECT_EQ(lazy.tables_resident(), lazy.NumTables());
  EXPECT_TRUE(CorporaEqual(original, lazy));
  // Idempotent, and Get keeps working after the backing was released.
  ASSERT_TRUE(lazy.MaterializeAll().ok());
  EXPECT_EQ(lazy.table(0).cell(1, 1), original.table(0).cell(1, 1));
}

TEST(TableStoreTest, ConcurrentGetsMaterializeOnceAndRaceFree) {
  Corpus original = MakeCorpus(16, 8);
  Corpus lazy = OpenLazyCopy(original, "race");
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&lazy, w] {
      // Every thread touches every table, starting at a different point so
      // same-table and different-table races both happen.
      const size_t n = lazy.NumTables();
      for (size_t i = 0; i < n; ++i) {
        const TableId t = static_cast<TableId>((i + w * 3) % n);
        const Table& table = lazy.table(t);
        EXPECT_EQ(table.NumColumns(), 3u);
        EXPECT_EQ(table.cell(1, 1), "x1");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_TRUE(lazy.fully_resident());
  EXPECT_TRUE(CorporaEqual(original, lazy));
}

TEST(TableStoreTest, WarmerRacesOnDemandReadersSafely) {
  Corpus original = MakeCorpus(24, 10);
  Corpus lazy = OpenLazyCopy(original, "warmrace");
  std::function<Status()> warmer = lazy.MakeWarmer();
  std::thread warm_thread([&warmer] { EXPECT_TRUE(warmer().ok()); });
  for (TableId t = 0; t < lazy.NumTables(); ++t) {
    EXPECT_EQ(lazy.table(t).name(), "table_" + std::to_string(t));
  }
  warm_thread.join();
  EXPECT_TRUE(lazy.fully_resident());
  EXPECT_TRUE(CorporaEqual(original, lazy));
}

TEST(TableStoreTest, WarmerSurvivesAMoveOfTheOwningCorpus) {
  Corpus original = MakeCorpus(32, 12);
  Corpus lazy = OpenLazyCopy(original, "move");
  std::function<Status()> warmer = lazy.MakeWarmer();
  std::thread warm_thread([&warmer] { EXPECT_TRUE(warmer().ok()); });
  // The warmer co-owns the store's state: moving the corpus handle while
  // it streams must stay safe (ASan/TSan turn a lifetime bug into a hard
  // failure).
  Corpus moved = std::move(lazy);
  warm_thread.join();
  EXPECT_TRUE(moved.fully_resident());
  EXPECT_TRUE(CorporaEqual(original, moved));
}

TEST(TableStoreTest, MutableAccessMaterializesAndShapeTracksEdits) {
  Corpus original = MakeCorpus(3, 4);
  Corpus lazy = OpenLazyCopy(original, "mutate");
  Table* t1 = lazy.mutable_table(1);
  EXPECT_TRUE(lazy.table_resident(1));
  t1->AddColumn("d");
  ASSERT_TRUE(t1->AppendRow({"p", "q", "r", "s"}).ok());
  // Shape accessors must reflect the live table, not the stale header.
  EXPECT_EQ(lazy.table_num_columns(1), 4u);
  EXPECT_EQ(lazy.table_num_rows(1), original.table_num_rows(1) + 1);
  EXPECT_EQ(lazy.table_column_name(1, 3), "d");
  // Untouched tables still answer from the header.
  EXPECT_FALSE(lazy.table_resident(2));
  EXPECT_EQ(lazy.table_num_columns(2), 3u);
}

TEST(TableStoreTest, AddTableAfterLazyOpenIsResident) {
  Corpus lazy = OpenLazyCopy(MakeCorpus(2, 2), "append");
  Table extra("extra");
  extra.AddColumn("z");
  (void)extra.AppendRow({"42"});
  const TableId id = lazy.AddTable(std::move(extra));
  EXPECT_TRUE(lazy.table_resident(id));
  EXPECT_EQ(lazy.table_name(id), "extra");
  EXPECT_EQ(lazy.table(id).cell(0, 0), "42");
  EXPECT_EQ(lazy.tables_resident(), 1u);  // the two lazy tables stay cold
  EXPECT_FALSE(lazy.fully_resident());
}

TEST(TableStoreTest, EmptyCorpusIsTriviallyResident) {
  Corpus lazy = OpenLazyCopy(Corpus{}, "empty");
  EXPECT_EQ(lazy.NumTables(), 0u);
  EXPECT_TRUE(lazy.fully_resident());
  EXPECT_TRUE(lazy.MaterializeAll().ok());
}

// ---- residency budget: LRU eviction + columnar materialization --------

TEST(TableStoreTest, BudgetEvictsOldestTouchFirstAndRetouchReparses) {
  Corpus original = MakeCorpus(6, 8);
  Corpus lazy = OpenLazyCopy(original, "lru");
  for (TableId t = 0; t < 4; ++t) (void)lazy.table(t);
  const uint64_t keep_two =
      lazy.table_resident_bytes(2) + lazy.table_resident_bytes(3);
  lazy.SetBudget(keep_two);
  lazy.EvictToBudget();
  // Tables 0 and 1 carry the oldest touch stamps; 2 and 3 survive.
  EXPECT_FALSE(lazy.table_resident(0));
  EXPECT_FALSE(lazy.table_resident(1));
  EXPECT_TRUE(lazy.table_resident(2));
  EXPECT_TRUE(lazy.table_resident(3));
  ResidencyStats stats = lazy.residency();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.resident_bytes, keep_two);
  // Re-touching an evicted table re-parses it bit-identically and counts
  // the rematerialization.
  MaterializeOutcome outcome;
  const Table& t0 = lazy.MaterializeTable(0, &outcome);
  EXPECT_TRUE(outcome.rematerialized);
  EXPECT_GT(outcome.bytes_parsed, 0u);
  EXPECT_TRUE(TablesEqual(original.table(0), t0));
  EXPECT_EQ(lazy.residency().rematerializations, 1u);
}

TEST(TableStoreTest, TinyBudgetThrashStaysCorrect) {
  Corpus original = MakeCorpus(5, 6);
  Corpus lazy = OpenLazyCopy(original, "thrash");
  lazy.SetBudget(1);  // smaller than any table: every idle point evicts all
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (TableId t = 0; t < lazy.NumTables(); ++t) {
      EXPECT_TRUE(TablesEqual(original.table(t), lazy.table(t)));
      lazy.EvictToBudget();  // idle point between "queries"
      EXPECT_EQ(lazy.residency().resident_bytes, 0u);
    }
  }
  const ResidencyStats stats = lazy.residency();
  EXPECT_EQ(stats.evictions, 3u * lazy.NumTables());
  EXPECT_EQ(stats.rematerializations, 2u * lazy.NumTables());
  EXPECT_TRUE(lazy.load_status().ok());
}

TEST(TableStoreTest, GetColumnsMaterializesOnlyThoseColumns) {
  Corpus original = MakeCorpus(3, 7);
  Corpus lazy = OpenLazyCopy(original, "columnar");
  MaterializeOutcome outcome;
  const Table& partial = lazy.MaterializeColumns(1, {1}, &outcome);
  // Only column 1's extent parsed; the untouched columns are skeleton cells.
  EXPECT_EQ(outcome.bytes_parsed,
            TableColumnCellBytes(original.table(1), 1));
  EXPECT_EQ(lazy.table_resident_bytes(1), outcome.bytes_parsed);
  EXPECT_LT(lazy.table_resident_bytes(1), lazy.table_cell_bytes(1));
  for (RowId r = 0; r < partial.NumRows(); ++r) {
    EXPECT_EQ(partial.cell(r, 1), original.table(1).cell(r, 1));
    EXPECT_EQ(partial.cell(r, 0), "");
  }
  EXPECT_EQ(lazy.residency().partial_tables, 1u);
  // Requesting an already-parsed column is free; tombstones carried over.
  MaterializeOutcome again;
  (void)lazy.MaterializeColumns(1, {1}, &again);
  EXPECT_EQ(again.bytes_parsed, 0u);
  EXPECT_EQ(partial.NumLiveRows(), original.table(1).NumLiveRows());
  // A full Get completes the remaining columns — equal to eager.
  EXPECT_TRUE(TablesEqual(original.table(1), lazy.table(1)));
  EXPECT_EQ(lazy.table_resident_bytes(1), lazy.table_cell_bytes(1));
  EXPECT_EQ(lazy.residency().partial_tables, 0u);
}

TEST(TableStoreTest, PinnedTableSurvivesEviction) {
  Corpus original = MakeCorpus(4, 6);
  Corpus lazy = OpenLazyCopy(original, "pin");
  // Armed before the touches: an unbudgeted store releases its backing once
  // fully materialized, after which eviction is (correctly) impossible.
  lazy.SetBudget(1);
  for (TableId t = 0; t < lazy.NumTables(); ++t) (void)lazy.table(t);
  // Mutable() pins: a caller holding a Table* must never have it evicted
  // (and re-parsing would resurrect pre-edit cells anyway).
  Table* pinned = lazy.mutable_table(1);
  lazy.EvictToBudget();
  EXPECT_TRUE(lazy.table_resident(1));
  EXPECT_FALSE(lazy.table_resident(0));
  EXPECT_EQ(lazy.residency().resident_bytes, lazy.table_resident_bytes(1));
  EXPECT_EQ(pinned->cell(1, 0), original.table(1).cell(1, 0));
}

TEST(TableStoreTest, EvictionAtIdlePointsBetweenReaderWavesIsSafe) {
  // The mutation/quiesce contract under TSan: warmer and on-demand readers
  // (full and columnar) race each other freely within a wave; eviction runs
  // only at the idle point after every thread joined. Contents must stay
  // bit-identical through evict + re-parse cycles.
  Corpus original = MakeCorpus(16, 8);
  Corpus lazy = OpenLazyCopy(original, "evictwaves");
  lazy.SetBudget(1);
  for (int wave = 0; wave < 3; ++wave) {
    std::function<Status()> warmer = lazy.MakeWarmer();
    std::thread warm_thread([&warmer] { EXPECT_TRUE(warmer().ok()); });
    std::vector<std::thread> readers;
    for (int w = 0; w < 4; ++w) {
      readers.emplace_back([&lazy, &original, w] {
        const size_t n = lazy.NumTables();
        for (size_t i = 0; i < n; ++i) {
          const TableId t = static_cast<TableId>((i + w * 5) % n);
          if (w % 2 == 0) {
            EXPECT_EQ(lazy.table(t).cell(1, 1), original.table(t).cell(1, 1));
          } else {
            const Table& partial = lazy.MaterializeColumns(t, {1});
            EXPECT_EQ(partial.cell(1, 1), original.table(t).cell(1, 1));
          }
        }
      });
    }
    warm_thread.join();
    for (std::thread& reader : readers) reader.join();
    lazy.EvictToBudget();  // idle: no in-flight materializer or reader
    EXPECT_EQ(lazy.residency().resident_bytes, 0u);
  }
  EXPECT_GT(lazy.residency().evictions, 0u);
  EXPECT_GT(lazy.residency().rematerializations, 0u);
  lazy.SetBudget(0);
  ASSERT_TRUE(lazy.MaterializeAll().ok());
  EXPECT_TRUE(CorporaEqual(original, lazy));
}

TEST(TableStoreTest, ResidentStoreShapeAccessorsMatchTables) {
  Corpus corpus = MakeCorpus(3, 5);
  for (TableId t = 0; t < corpus.NumTables(); ++t) {
    EXPECT_TRUE(corpus.table_resident(t));
    EXPECT_EQ(corpus.table_name(t), corpus.table(t).name());
    EXPECT_EQ(corpus.table_num_rows(t), corpus.table(t).NumRows());
    EXPECT_EQ(corpus.table_num_live_rows(t), corpus.table(t).NumLiveRows());
  }
  EXPECT_TRUE(corpus.fully_resident());
  EXPECT_TRUE(corpus.load_status().ok());
  EXPECT_TRUE(corpus.MaterializeAll().ok());  // no-op, stays OK
}

}  // namespace
}  // namespace mate
