#include "core/init_column.h"

#include <gtest/gtest.h>

#include "index/index_builder.h"

namespace mate {
namespace {

// Corpus where "common" has a long posting list and "rare" a short one.
Corpus MakeSkewedCorpus() {
  Corpus corpus;
  for (int t = 0; t < 10; ++t) {
    Table table("t" + std::to_string(t));
    table.AddColumn("a");
    table.AddColumn("b");
    for (int r = 0; r < 5; ++r) {
      (void)table.AppendRow({"common", "filler" + std::to_string(t * 10 + r)});
    }
    corpus.AddTable(std::move(table));
  }
  Table rare_table("rare_t");
  rare_table.AddColumn("a");
  rare_table.AddColumn("b");
  (void)rare_table.AppendRow({"rare", "common"});
  corpus.AddTable(std::move(rare_table));
  return corpus;
}

std::unique_ptr<InvertedIndex> Build(const Corpus& corpus) {
  auto index = BuildIndex(corpus, IndexBuildOptions{});
  EXPECT_TRUE(index.ok());
  return std::move(*index);
}

Table MakeQuery() {
  // Column 0: 2 distinct values, both common (big PLs).
  // Column 1: 3 distinct values, rare (small PLs).
  // Column 2: 1 distinct value with the longest strings.
  Table q("q");
  q.AddColumn("common_col");
  q.AddColumn("rare_col");
  q.AddColumn("long_col");
  (void)q.AppendRow({"common", "rare", "averyveryverylongstringvalue"});
  (void)q.AppendRow({"common", "rare2", "averyveryverylongstringvalue"});
  (void)q.AppendRow({"common2", "rare3", "averyveryverylongstringvalue"});
  return q;
}

TEST(InitColumnTest, CountPlItems) {
  Corpus corpus = MakeSkewedCorpus();
  auto index = Build(corpus);
  Table q = MakeQuery();
  // "common" appears 50x in column a plus 1x in rare_t.b; "common2" never.
  EXPECT_EQ(CountPlItemsForColumn(q, 0, *index), 51u);
  // "rare" appears once; rare2/rare3 never.
  EXPECT_EQ(CountPlItemsForColumn(q, 1, *index), 1u);
  EXPECT_EQ(CountPlItemsForColumn(q, 2, *index), 0u);
}

TEST(InitColumnTest, MinCardinalityPicksFewestDistinct) {
  Table q = MakeQuery();
  // Cardinalities: col0 = 2, col1 = 3, col2 = 1.
  EXPECT_EQ(SelectInitColumn(q, {0, 1, 2},
                             InitColumnStrategy::kMinCardinality, nullptr),
            2u);
  EXPECT_EQ(SelectInitColumn(q, {1, 0},
                             InitColumnStrategy::kMinCardinality, nullptr),
            1u);  // position of col 0 in the key list
}

TEST(InitColumnTest, ColumnOrderPicksFirst) {
  Table q = MakeQuery();
  EXPECT_EQ(SelectInitColumn(q, {2, 1}, InitColumnStrategy::kColumnOrder,
                             nullptr),
            0u);
}

TEST(InitColumnTest, LongestStringPicksLongCell) {
  Table q = MakeQuery();
  EXPECT_EQ(SelectInitColumn(q, {0, 1, 2},
                             InitColumnStrategy::kLongestString, nullptr),
            2u);
}

TEST(InitColumnTest, OraclesBracketTheHeuristics) {
  Corpus corpus = MakeSkewedCorpus();
  auto index = Build(corpus);
  Table q = MakeQuery();
  std::vector<ColumnId> key = {0, 1, 2};
  size_t best = SelectInitColumn(q, key, InitColumnStrategy::kBestCase,
                                 index.get());
  size_t worst = SelectInitColumn(q, key, InitColumnStrategy::kWorstCase,
                                  index.get());
  EXPECT_EQ(best, 2u);   // 0 PL items
  EXPECT_EQ(worst, 0u);  // 51 PL items
  uint64_t best_cost = CountPlItemsForColumn(q, key[best], *index);
  uint64_t worst_cost = CountPlItemsForColumn(q, key[worst], *index);
  for (size_t i = 0; i < key.size(); ++i) {
    uint64_t cost = CountPlItemsForColumn(q, key[i], *index);
    EXPECT_GE(cost, best_cost);
    EXPECT_LE(cost, worst_cost);
  }
}

TEST(InitColumnTest, TieBreaksTowardEarlierColumn) {
  Table q("q");
  q.AddColumn("a");
  q.AddColumn("b");
  (void)q.AppendRow({"x", "y"});  // both cardinality 1
  EXPECT_EQ(SelectInitColumn(q, {0, 1},
                             InitColumnStrategy::kMinCardinality, nullptr),
            0u);
  EXPECT_EQ(SelectInitColumn(q, {1, 0},
                             InitColumnStrategy::kMinCardinality, nullptr),
            0u);
}

TEST(InitColumnTest, StrategyNames) {
  EXPECT_EQ(InitColumnStrategyName(InitColumnStrategy::kMinCardinality),
            "Cardinality");
  EXPECT_EQ(InitColumnStrategyName(InitColumnStrategy::kLongestString),
            "TLS");
  EXPECT_EQ(InitColumnStrategyName(InitColumnStrategy::kBestCase), "Best");
}

}  // namespace
}  // namespace mate
