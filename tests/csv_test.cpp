#include "storage/csv.h"

#include <gtest/gtest.h>

namespace mate {
namespace {

TEST(CsvTest, ParsesHeaderAndRows) {
  auto table = ParseCsv("a,b,c\n1,2,3\n4,5,6\n", "t");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->NumColumns(), 3u);
  EXPECT_EQ(table->NumRows(), 2u);
  EXPECT_EQ(table->column_name(0), "a");
  EXPECT_EQ(table->cell(1, 2), "6");
}

TEST(CsvTest, QuotedFields) {
  auto table = ParseCsv(
      "name,notes\n"
      "\"Lee, Muhammad\",\"said \"\"hi\"\"\"\n",
      "t");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->cell(0, 0), "Lee, Muhammad");
  EXPECT_EQ(table->cell(0, 1), "said \"hi\"");
}

TEST(CsvTest, QuotedNewlines) {
  auto table = ParseCsv("a,b\n\"line1\nline2\",x\n", "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->cell(0, 0), "line1\nline2");
}

TEST(CsvTest, CrLfLineEndings) {
  auto table = ParseCsv("a,b\r\n1,2\r\n", "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->NumRows(), 1u);
  EXPECT_EQ(table->cell(0, 1), "2");
}

TEST(CsvTest, MissingFinalNewline) {
  auto table = ParseCsv("a,b\n1,2", "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->NumRows(), 1u);
  EXPECT_EQ(table->cell(0, 1), "2");
}

TEST(CsvTest, RejectsRaggedRows) {
  auto table = ParseCsv("a,b\n1,2,3\n", "t");
  EXPECT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsInvalidArgument());
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseCsv("", "t").ok());
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("a\n\"unterminated\n", "t").ok());
}

TEST(CsvTest, SkipsBlankLines) {
  auto table = ParseCsv("a,b\n1,2\n\n3,4\n", "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->NumRows(), 2u);
}

TEST(CsvTest, RoundTripThroughToCsv) {
  auto table = ParseCsv(
      "name,notes\n"
      "\"Lee, Muhammad\",plain\n"
      "simple,\"with \"\"quotes\"\"\"\n",
      "t");
  ASSERT_TRUE(table.ok());
  auto again = ParseCsv(ToCsv(*table), "t2");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_EQ(again->NumRows(), table->NumRows());
  for (RowId r = 0; r < table->NumRows(); ++r) {
    for (ColumnId c = 0; c < table->NumColumns(); ++c) {
      EXPECT_EQ(again->cell(r, c), table->cell(r, c));
    }
  }
}

TEST(CsvTest, ToCsvSkipsDeletedRows) {
  auto table = ParseCsv("a\n1\n2\n", "t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table->DeleteRow(0).ok());
  EXPECT_EQ(ToCsv(*table), "a\n2\n");
}

}  // namespace
}  // namespace mate
