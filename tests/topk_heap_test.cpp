#include "util/topk_heap.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace mate {
namespace {

TEST(TopKHeapTest, KeepsBestK) {
  TopKHeap<int> heap(3);
  for (int i = 0; i < 10; ++i) heap.Add(i, i);
  ASSERT_TRUE(heap.Full());
  auto sorted = heap.SortedDesc();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].score, 9);
  EXPECT_EQ(sorted[1].score, 8);
  EXPECT_EQ(sorted[2].score, 7);
  EXPECT_EQ(heap.KthScore(), 7);
}

TEST(TopKHeapTest, NotFullAcceptsEverything) {
  TopKHeap<int> heap(5);
  EXPECT_TRUE(heap.Add(1, 0));
  EXPECT_TRUE(heap.Add(2, -5));
  EXPECT_FALSE(heap.Full());
  EXPECT_EQ(heap.size(), 2u);
}

TEST(TopKHeapTest, RejectsWorseThanKth) {
  TopKHeap<int> heap(2);
  heap.Add(1, 10);
  heap.Add(2, 20);
  EXPECT_FALSE(heap.Add(3, 5));
  EXPECT_EQ(heap.KthScore(), 10);
  EXPECT_TRUE(heap.Add(4, 15));
  EXPECT_EQ(heap.KthScore(), 15);
}

TEST(TopKHeapTest, TieBreaksTowardSmallerId) {
  TopKHeap<int> heap(2);
  heap.Add(10, 5);
  heap.Add(20, 5);
  // Same score, smaller id: should displace id 20.
  EXPECT_TRUE(heap.Add(15, 5));
  auto sorted = heap.SortedDesc();
  EXPECT_EQ(sorted[0].id, 10);
  EXPECT_EQ(sorted[1].id, 15);
  // Same score, larger id than the worst kept: rejected.
  EXPECT_FALSE(heap.Add(30, 5));
}

TEST(TopKHeapTest, SortedDescOrdering) {
  TopKHeap<int> heap(4);
  heap.Add(3, 7);
  heap.Add(1, 7);
  heap.Add(2, 9);
  heap.Add(4, 1);
  auto sorted = heap.SortedDesc();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].id, 2);   // score 9
  EXPECT_EQ(sorted[1].id, 1);   // score 7, smaller id first
  EXPECT_EQ(sorted[2].id, 3);   // score 7
  EXPECT_EQ(sorted[3].id, 4);   // score 1
}

TEST(TopKHeapTest, MatchesSortReference) {
  // Property: heap result == top-k of a full sort, for random inputs.
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    size_t k = 1 + rng.Uniform(8);
    TopKHeap<uint64_t> heap(k);
    std::vector<std::pair<int64_t, uint64_t>> all;  // (-score, id)
    size_t n = rng.Uniform(60);
    for (size_t i = 0; i < n; ++i) {
      int64_t score = static_cast<int64_t>(rng.Uniform(10));
      heap.Add(i, score);
      all.emplace_back(-score, i);
    }
    std::sort(all.begin(), all.end());
    auto sorted = heap.SortedDesc();
    ASSERT_EQ(sorted.size(), std::min(k, n));
    for (size_t i = 0; i < sorted.size(); ++i) {
      EXPECT_EQ(sorted[i].score, -all[i].first);
      EXPECT_EQ(sorted[i].id, all[i].second);
    }
  }
}

}  // namespace
}  // namespace mate
