#include "storage/corpus.h"

#include <gtest/gtest.h>

namespace mate {
namespace {

Corpus MakeSmallCorpus() {
  Corpus corpus;
  Table t1("t1");
  t1.AddColumn("a");
  t1.AddColumn("b");
  (void)t1.AppendRow({"x", "y"});
  (void)t1.AppendRow({"x", "z"});
  corpus.AddTable(std::move(t1));
  Table t2("t2");
  t2.AddColumn("c");
  (void)t2.AppendRow({"X"});  // same normalized value as "x"
  corpus.AddTable(std::move(t2));
  return corpus;
}

TEST(CorpusTest, AddTableAssignsSequentialIds) {
  Corpus corpus = MakeSmallCorpus();
  EXPECT_EQ(corpus.NumTables(), 2u);
  EXPECT_EQ(corpus.table(0).name(), "t1");
  EXPECT_EQ(corpus.table(1).name(), "t2");
}

TEST(CorpusTest, StatsCountShapes) {
  CorpusStats stats = MakeSmallCorpus().ComputeStats();
  EXPECT_EQ(stats.num_tables, 2u);
  EXPECT_EQ(stats.num_columns, 3u);
  EXPECT_EQ(stats.num_rows, 3u);
  EXPECT_EQ(stats.num_cells, 5u);
  EXPECT_DOUBLE_EQ(stats.avg_columns_per_table, 1.5);
  EXPECT_DOUBLE_EQ(stats.avg_rows_per_table, 1.5);
}

TEST(CorpusTest, StatsUniquesAreNormalized) {
  CorpusStats stats = MakeSmallCorpus().ComputeStats();
  // Distinct normalized values: x, y, z ("X" folds into "x").
  EXPECT_EQ(stats.num_unique_values, 3u);
}

TEST(CorpusTest, StatsCharCounts) {
  CorpusStats stats = MakeSmallCorpus().ComputeStats();
  // 'x' appears in three cells.
  EXPECT_EQ(stats.char_counts[NormalizeChar('x')], 3u);
  EXPECT_EQ(stats.char_counts[NormalizeChar('y')], 1u);
  EXPECT_EQ(stats.char_counts[NormalizeChar('q')], 0u);
}

TEST(CorpusTest, StatsSkipDeletedRows) {
  Corpus corpus = MakeSmallCorpus();
  ASSERT_TRUE(corpus.mutable_table(0)->DeleteRow(1).ok());
  CorpusStats stats = corpus.ComputeStats();
  EXPECT_EQ(stats.num_rows, 2u);
  EXPECT_EQ(stats.num_cells, 3u);
  EXPECT_EQ(stats.num_unique_values, 2u);  // z gone
}

TEST(CorpusTest, EmptyCorpusStats) {
  Corpus corpus;
  CorpusStats stats = corpus.ComputeStats();
  EXPECT_EQ(stats.num_tables, 0u);
  EXPECT_EQ(stats.num_unique_values, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_columns_per_table, 0.0);
}

TEST(CorpusTest, StatsToStringMentionsCounts) {
  std::string s = MakeSmallCorpus().ComputeStats().ToString();
  EXPECT_NE(s.find("tables=2"), std::string::npos);
  EXPECT_NE(s.find("unique_values=3"), std::string::npos);
}

}  // namespace
}  // namespace mate
