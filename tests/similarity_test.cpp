#include "core/similarity.h"

#include <gtest/gtest.h>

#include "hash/xash.h"

namespace mate {
namespace {

std::unique_ptr<Xash> MakeHash(size_t bits = 128) {
  XashOptions opts;
  opts.hash_bits = bits;
  return std::make_unique<Xash>(opts);
}

TEST(SignatureHammingTest, BasicProperties) {
  auto hash = MakeHash();
  BitVector a = hash->HashValue("brooklyn");
  BitVector b = hash->HashValue("brooklyn");
  EXPECT_EQ(SignatureHamming(a, b), 0u);
  BitVector c = hash->HashValue("cambridge");
  EXPECT_GT(SignatureHamming(a, c), 0u);
  // Symmetry.
  EXPECT_EQ(SignatureHamming(a, c), SignatureHamming(c, a));
}

TEST(SignatureHammingTest, SimilarValuesAreCloserThanDissimilar) {
  // §9: XASH FPs are syntactically similar values — which makes the
  // signature distance a similarity signal. Same rare chars and length ->
  // small distance.
  auto hash = MakeHash();
  size_t close_dist = SignatureHamming(hash->HashValue("brooklyn"),
                                       hash->HashValue("brooklym"));
  size_t far_dist = SignatureHamming(hash->HashValue("brooklyn"),
                                     hash->HashValue("zx9"));
  EXPECT_LT(close_dist, far_dist);
}

TEST(SimilarValueCandidatesTest, ExactDuplicatesAlwaysPair) {
  auto hash = MakeHash();
  std::vector<std::string> values = {"Alpha", "alpha ", "beta", "gamma"};
  auto pairs = SimilarValueCandidates(*hash, values, /*max_hamming=*/0);
  // "Alpha" and "alpha " normalize identically -> distance 0.
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].left, 0u);
  EXPECT_EQ(pairs[0].right, 1u);
  EXPECT_EQ(pairs[0].hamming, 0u);
}

TEST(SimilarValueCandidatesTest, BudgetControlsRecall) {
  auto hash = MakeHash();
  std::vector<std::string> values = {"brooklyn", "brooklym", "zzz", "qqq"};
  auto tight = SimilarValueCandidates(*hash, values, 2);
  auto loose = SimilarValueCandidates(*hash, values, 256);
  EXPECT_LE(tight.size(), loose.size());
  EXPECT_EQ(loose.size(), 6u);  // all pairs at maximal budget
}

TEST(RowOverlapTest, JaccardSemantics) {
  Table a("a");
  a.AddColumn("x");
  a.AddColumn("y");
  a.AddColumn("z");
  (void)a.AppendRow({"one", "two", "three"});
  Table b("b");
  b.AddColumn("p");
  b.AddColumn("q");
  b.AddColumn("r");
  (void)b.AppendRow({"two", "THREE", "four"});
  // Sets: {one,two,three} vs {two,three,four}: 2 / 4.
  EXPECT_DOUBLE_EQ(RowOverlap(a, 0, b, 0), 0.5);
}

TEST(RowOverlapTest, IdenticalRowsScoreOne) {
  Table a("a");
  a.AddColumn("x");
  a.AddColumn("y");
  (void)a.AppendRow({"v1", "v2"});
  (void)a.AppendRow({"V1 ", "v2"});  // same after normalization
  EXPECT_DOUBLE_EQ(RowOverlap(a, 0, a, 1), 1.0);
}

class DuplicateRowFinderTest : public testing::Test {
 protected:
  void SetUp() override {
    hash_ = MakeHash();
    Table t1("records_a");
    t1.AddColumn("first");
    t1.AddColumn("last");
    t1.AddColumn("city");
    (void)t1.AppendRow({"muhammad", "lee", "berlin"});
    (void)t1.AppendRow({"ansel", "adams", "vienna"});
    (void)t1.AppendRow({"unique", "rowvalue", "nowhere"});
    corpus_.AddTable(std::move(t1));

    Table t2("records_b");
    t2.AddColumn("fname");
    t2.AddColumn("lname");
    t2.AddColumn("town");
    // Exact duplicate of t1 row 0 (different case/padding).
    (void)t2.AppendRow({"Muhammad", "LEE", " berlin "});
    // Near duplicate of t1 row 1 (2 of 3 cells).
    (void)t2.AppendRow({"ansel", "adams", "salzburg"});
    // Unrelated.
    (void)t2.AppendRow({"totally", "different", "row"});
    corpus_.AddTable(std::move(t2));
  }

  Corpus corpus_;
  std::unique_ptr<Xash> hash_;
};

TEST_F(DuplicateRowFinderTest, ExactDuplicatesAreAlwaysFound) {
  DuplicateRowFinder finder(&corpus_, hash_.get());
  DuplicateFinderOptions options;
  options.min_overlap = 0.99;
  auto pairs = finder.FindDuplicates(options);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].left_table, 0u);
  EXPECT_EQ(pairs[0].left_row, 0u);
  EXPECT_EQ(pairs[0].right_table, 1u);
  EXPECT_EQ(pairs[0].right_row, 0u);
  EXPECT_DOUBLE_EQ(pairs[0].overlap, 1.0);
}

TEST_F(DuplicateRowFinderTest, NearDuplicatesFoundAtLowerThreshold) {
  DuplicateRowFinder finder(&corpus_, hash_.get());
  DuplicateFinderOptions options;
  options.min_overlap = 0.45;  // 2 shared of 4 distinct cells = 0.5
  auto pairs = finder.FindDuplicates(options);
  bool found_near = false;
  for (const DuplicateRowPair& pair : pairs) {
    if (pair.left_table == 0 && pair.left_row == 1 &&
        pair.right_table == 1 && pair.right_row == 1) {
      found_near = true;
      EXPECT_NEAR(pair.overlap, 0.5, 1e-9);
    }
  }
  EXPECT_TRUE(found_near);
}

TEST_F(DuplicateRowFinderTest, UnrelatedRowsAreNotReported) {
  DuplicateRowFinder finder(&corpus_, hash_.get());
  DuplicateFinderOptions options;
  options.min_overlap = 0.8;
  for (const DuplicateRowPair& pair : finder.FindDuplicates(options)) {
    EXPECT_FALSE(pair.left_table == 0 && pair.left_row == 2);
    EXPECT_FALSE(pair.right_table == 1 && pair.right_row == 2);
  }
}

TEST_F(DuplicateRowFinderTest, DeletedRowsAreSkipped) {
  ASSERT_TRUE(corpus_.mutable_table(1)->DeleteRow(0).ok());
  DuplicateRowFinder finder(&corpus_, hash_.get());
  DuplicateFinderOptions options;
  options.min_overlap = 0.99;
  EXPECT_TRUE(finder.FindDuplicates(options).empty());
}

}  // namespace
}  // namespace mate
