// Corpus memory governance at the Session level: a byte-budgeted session
// behaves like a buffer pool — candidate tables (or just their touched
// columns) materialize on demand, the least-recently-touched tables are
// evicted at the idle points between queries, and every result stays
// bit-identical to an unlimited run. Also covers: eviction traffic
// surfacing in BatchStats, per-column materialization for single-column
// keys, and the budget disabling the background warmer.

#include "core/session.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "storage/table_store.h"
#include "util/rng.h"
#include "workload/query_gen.h"
#include "workload/vocabulary.h"

namespace mate {
namespace {

// Deterministic planted-join world (same recipe as session_open_async_test).
struct World {
  Corpus corpus;
  std::vector<QueryCase> queries;
};

World MakeWorld(size_t key_size) {
  World w;
  Rng rng(7);
  Vocabulary vocab = Vocabulary::Generate(120, Vocabulary::Style::kWords, 11);
  for (size_t t = 0; t < 20; ++t) {
    Table table("t" + std::to_string(t));
    size_t cols = 3 + rng.Uniform(3);
    for (size_t c = 0; c < cols; ++c) table.AddColumn("c" + std::to_string(c));
    size_t rows = 4 + rng.Uniform(16);
    for (size_t r = 0; r < rows; ++r) {
      std::vector<std::string> cells;
      for (size_t c = 0; c < cols; ++c) {
        cells.push_back(vocab.word(rng.Uniform(vocab.size())));
      }
      (void)table.AppendRow(std::move(cells));
    }
    w.corpus.AddTable(std::move(table));
  }
  QuerySetSpec spec;
  spec.num_queries = 6;
  spec.query_rows = 20;
  spec.query_columns = 4;
  spec.key_size = key_size;
  spec.planted_tables = 5;
  spec.seed = 3;
  w.queries = GenerateQueries(&w.corpus, vocab, spec);
  return w;
}

struct SavedWorld {
  World world;
  std::string corpus_path;
  std::string index_path;
};

SavedWorld SaveWorld(const std::string& tag, size_t key_size) {
  SavedWorld saved;
  saved.world = MakeWorld(key_size);
  saved.corpus_path = testing::TempDir() + "/mate_budget_" + tag + ".corpus";
  saved.index_path = testing::TempDir() + "/mate_budget_" + tag + ".index";
  SessionOptions build;
  build.corpus = MakeWorld(key_size).corpus;  // identical bytes
  build.build_index = true;
  auto session = Session::Open(std::move(build));
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_TRUE(session->Save(saved.corpus_path, saved.index_path).ok());
  return saved;
}

void RemoveWorld(const SavedWorld& saved) {
  std::remove(saved.corpus_path.c_str());
  std::remove(saved.index_path.c_str());
}

// Budget 0 = unlimited. The cache is always off (every query must pay its
// materialization cost) and the warmer is explicit per test.
Session OpenGoverned(const SavedWorld& saved, uint64_t budget_bytes,
                     bool warm_corpus = false, unsigned num_threads = 2) {
  SessionOptions options;
  options.corpus_path = saved.corpus_path;
  options.index_path = saved.index_path;
  options.num_threads = num_threads;
  options.cache_bytes = 0;
  options.warm_corpus = warm_corpus;
  options.corpus_budget_bytes = budget_bytes;
  auto session = Session::Open(std::move(options));
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return std::move(*session);
}

std::vector<QuerySpec> MakeSpecs(const World& world) {
  std::vector<QuerySpec> specs;
  for (const QueryCase& qc : world.queries) {
    QuerySpec spec;
    spec.table = &qc.query;
    spec.key_columns = qc.key_columns;
    spec.options.k = 5;
    specs.push_back(std::move(spec));
  }
  return specs;
}

// Shape accessor — never materializes, so it reads the same from any
// residency state.
uint64_t TotalCellBytes(const Session& session) {
  uint64_t total = 0;
  for (TableId t = 0; t < session.corpus().NumTables(); ++t) {
    total += session.corpus().table_cell_bytes(t);
  }
  return total;
}

// Results and work counters must match bit for bit; residency counters are
// deliberately excluded (they are what a budget is allowed to change).
void ExpectBitIdentical(const DiscoveryResult& a, const DiscoveryResult& b) {
  ASSERT_EQ(a.top_k.size(), b.top_k.size());
  for (size_t i = 0; i < a.top_k.size(); ++i) {
    EXPECT_EQ(a.top_k[i].table_id, b.top_k[i].table_id);
    EXPECT_EQ(a.top_k[i].joinability, b.top_k[i].joinability);
    EXPECT_EQ(a.top_k[i].best_mapping, b.top_k[i].best_mapping);
  }
  EXPECT_EQ(a.stats.pl_items_fetched, b.stats.pl_items_fetched);
  EXPECT_EQ(a.stats.candidate_tables, b.stats.candidate_tables);
  EXPECT_EQ(a.stats.tables_evaluated, b.stats.tables_evaluated);
  EXPECT_EQ(a.stats.rows_checked, b.stats.rows_checked);
  EXPECT_EQ(a.stats.rows_sent_to_verification,
            b.stats.rows_sent_to_verification);
  EXPECT_EQ(a.stats.rows_true_positive, b.stats.rows_true_positive);
  EXPECT_EQ(a.stats.value_comparisons, b.stats.value_comparisons);
}

TEST(SessionBudgetTest, BudgetedDiscoverIsBitIdenticalAndEvictsAtIdle) {
  SavedWorld saved = SaveWorld("identical", /*key_size=*/2);
  Session unlimited = OpenGoverned(saved, /*budget_bytes=*/0);
  std::vector<DiscoveryResult> reference;
  std::vector<QuerySpec> specs = MakeSpecs(saved.world);
  for (const QuerySpec& spec : specs) {
    auto result = unlimited.Discover(spec);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    reference.push_back(std::move(*result));
  }

  const uint64_t total = TotalCellBytes(unlimited);
  const uint64_t budget = total / 4;
  ASSERT_GT(budget, 0u);
  Session governed = OpenGoverned(saved, budget);
  // Two passes: the second re-touches tables the first pass's idle points
  // evicted, so re-parses must reproduce the cells exactly.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t q = 0; q < specs.size(); ++q) {
      auto result = governed.Discover(specs[q]);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectBitIdentical(reference[q], *result);
      // Each Discover return is an idle point: evicted back under budget.
      EXPECT_LE(governed.corpus_residency().resident_bytes, budget);
    }
  }
  const ResidencyStats res = governed.corpus_residency();
  EXPECT_EQ(res.budget_bytes, budget);
  EXPECT_GT(res.evictions, 0u);
  EXPECT_GT(res.rematerializations, 0u);
  EXPECT_GT(res.bytes_evicted, 0u);
  RemoveWorld(saved);
}

TEST(SessionBudgetTest, BatchStatsSurfaceEvictionTraffic) {
  SavedWorld saved = SaveWorld("batch", /*key_size=*/2);
  Session eager = OpenGoverned(saved, /*budget_bytes=*/0);
  ASSERT_TRUE(eager.WaitCorpusResident().ok());
  std::vector<QuerySpec> specs = MakeSpecs(saved.world);
  auto reference = eager.DiscoverBatch(specs);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  Session governed = OpenGoverned(saved, TotalCellBytes(eager) / 4);
  // Two batches: the first materializes and evicts, the second re-touches
  // what the first evicted. Both must match the unlimited batch.
  for (int pass = 0; pass < 2; ++pass) {
    auto batch = governed.DiscoverBatch(specs);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch->results.size(), reference->results.size());
    for (size_t q = 0; q < batch->results.size(); ++q) {
      ExpectBitIdentical(reference->results[q], batch->results[q]);
    }
    EXPECT_GT(batch->stats.tables_materialized, 0u);
    EXPECT_GT(batch->stats.cell_bytes_materialized, 0u);
    EXPECT_GT(batch->stats.corpus_evictions, 0u);
    EXPECT_GT(batch->stats.corpus_evicted_bytes, 0u);
  }
  // The unlimited batch over a resident corpus reports zero traffic.
  EXPECT_EQ(reference->stats.corpus_evictions, 0u);
  EXPECT_EQ(reference->stats.corpus_evicted_bytes, 0u);
  RemoveWorld(saved);
}

TEST(SessionBudgetTest, SingleColumnKeysMaterializeColumnsNotWholeTables) {
  // Single-column keys hit the evaluator's columnar path: candidates that
  // survive to row verification parse only the posting columns, so total
  // bytes materialized stay strictly below the whole-corpus figure — with
  // results bit-identical to a fully resident session.
  SavedWorld saved = SaveWorld("columnar", /*key_size=*/1);
  Session eager = OpenGoverned(saved, /*budget_bytes=*/0);
  ASSERT_TRUE(eager.WaitCorpusResident().ok());
  std::vector<QuerySpec> specs = MakeSpecs(saved.world);
  auto reference = eager.DiscoverBatch(specs);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  Session lazy = OpenGoverned(saved, /*budget_bytes=*/0);
  auto batch = lazy.DiscoverBatch(specs);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  for (size_t q = 0; q < batch->results.size(); ++q) {
    ExpectBitIdentical(reference->results[q], batch->results[q]);
  }
  const ResidencyStats res = lazy.corpus_residency();
  EXPECT_GT(res.bytes_materialized, 0u);
  EXPECT_LT(res.bytes_materialized, TotalCellBytes(lazy));
  EXPECT_FALSE(lazy.corpus_resident());
  RemoveWorld(saved);
}

TEST(SessionBudgetTest, ColumnarPathMaterializesExactlyThePostingColumns) {
  // Pins the evaluator's touched-column set: the posting items of this
  // query land in columns 0 and 2 of the target table — interleaved and
  // heavily duplicated across rows, so the evaluator's dedup (sort +
  // unique) sees an unsorted, repeat-laden input. A lazy Discover must
  // leave the target with exactly the bytes an explicit
  // MaterializeColumns(t, {0, 2}) produces: no column dropped, none extra.
  Corpus corpus;
  Table target("target");
  for (size_t c = 0; c < 5; ++c) target.AddColumn("c" + std::to_string(c));
  for (int r = 0; r < 8; ++r) {
    // Key values v0..v3 alternate between column 0 (even rows) and column
    // 2 (odd rows); every other cell is unique filler.
    std::vector<std::string> cells(5);
    const std::string key = "v" + std::to_string(r % 4);
    for (size_t c = 0; c < 5; ++c) {
      cells[c] = "f" + std::to_string(r) + "_" + std::to_string(c);
    }
    cells[r % 2 == 0 ? 0 : 2] = key;
    (void)target.AppendRow(std::move(cells));
  }
  corpus.AddTable(std::move(target));
  Table decoy("decoy");
  decoy.AddColumn("a");
  decoy.AddColumn("b");
  (void)decoy.AppendRow({"v0", "x"});
  (void)decoy.AppendRow({"y", "z"});
  corpus.AddTable(std::move(decoy));

  const std::string corpus_path = testing::TempDir() + "/mate_pin.corpus";
  const std::string index_path = testing::TempDir() + "/mate_pin.index";
  {
    SessionOptions build;
    build.corpus = std::move(corpus);
    build.build_index = true;
    auto builder = Session::Open(std::move(build));
    ASSERT_TRUE(builder.ok()) << builder.status().ToString();
    ASSERT_TRUE(builder->Save(corpus_path, index_path).ok());
  }
  auto open_lazy = [&]() {
    SessionOptions options;
    options.corpus_path = corpus_path;
    options.index_path = index_path;
    options.cache_bytes = 0;
    options.warm_corpus = false;
    auto session = Session::Open(std::move(options));
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    return std::move(*session);
  };

  Table query("q");
  query.AddColumn("key");
  for (int i = 0; i < 4; ++i) {
    (void)query.AppendRow({"v" + std::to_string(i)});
  }
  QuerySpec spec;
  spec.table = &query;
  spec.key_columns = {0};
  spec.options.k = 5;

  Session discovered = open_lazy();
  const TableId target_id = 0;
  ASSERT_EQ(discovered.corpus().table_name(target_id), "target");
  auto result = discovered.Discover(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->top_k.empty());
  EXPECT_EQ(result->top_k[0].table_id, target_id);
  // col0 holds {v0, v2}, col2 holds {v1, v3}: best single mapping joins 2.
  EXPECT_EQ(result->top_k[0].joinability, 2);

  Session explicit_cols = open_lazy();
  (void)explicit_cols.corpus().MaterializeColumns(target_id, {0, 2});
  const uint64_t expected_bytes =
      explicit_cols.corpus().table_resident_bytes(target_id);
  EXPECT_GT(expected_bytes, 0u);
  EXPECT_LT(expected_bytes, discovered.corpus().table_cell_bytes(target_id));
  EXPECT_EQ(discovered.corpus().table_resident_bytes(target_id),
            expected_bytes);

  std::remove(corpus_path.c_str());
  std::remove(index_path.c_str());
}

TEST(SessionBudgetTest, BudgetDisablesTheBackgroundWarmer) {
  // warm_corpus stays at its default (true) but a budget is armed: warming
  // the whole lake just to evict it again is pointless, so no warmer runs
  // and residency stays governed by the queries alone.
  SavedWorld saved = SaveWorld("nowarm", /*key_size=*/2);
  Session probe = OpenGoverned(saved, /*budget_bytes=*/0);
  const uint64_t budget = TotalCellBytes(probe) / 4;

  Session governed = OpenGoverned(saved, budget, /*warm_corpus=*/true);
  std::vector<QuerySpec> specs = MakeSpecs(saved.world);
  for (const QuerySpec& spec : specs) {
    ASSERT_TRUE(governed.Discover(spec).ok());
  }
  EXPECT_FALSE(governed.corpus_resident());
  EXPECT_LE(governed.corpus_residency().resident_bytes, budget);
  RemoveWorld(saved);
}

}  // namespace
}  // namespace mate
